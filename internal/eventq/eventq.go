// Package eventq implements the deterministic discrete-event queue that
// drives the GPU simulation. Events are ordered by cycle; events at the
// same cycle are delivered in insertion order (FIFO) so that simulation
// outcomes do not depend on queue internals.
//
// The queue is a bucketed calendar queue tuned for the simulation's
// dominant access pattern — bursts of events landing on the same cycle
// (a preemption plan freezes several blocks at once, a rebalance
// schedules a batch of completions). Consecutive same-cycle schedules
// share a bucket (an append-only FIFO slice), so a burst of B events
// costs one heap operation instead of B. Scheduling a cycle other than
// the most recent one opens a fresh bucket even if that cycle already
// has one: buckets carry a creation sequence number and the heap orders
// by (cycle, sequence), which keeps FIFO within a cycle exact — every
// event in an earlier bucket was scheduled before every event in a
// later one — without any cycle-indexed map. Bucket shells live in an
// index-addressed slab, so the min-heap holds plain value triples with
// no pointers: comparisons never dereference, swaps never take a write
// barrier. Event structs are carved from chunked arenas and exhausted
// bucket shells are recycled on a free list, so steady-state scheduling
// allocates (amortized) nothing. All pooling is per-queue — and
// therefore per-simulation — which keeps runs bit-identical and
// memoizable: no state crosses from one job to the next.
package eventq

import "chimera/internal/units"

// Event is a callback scheduled to run at a simulation time. The cycle at
// which it fires is passed back to the callback.
type Event struct {
	At     units.Cycles
	Fire   func(now units.Cycles)
	staled bool
	fired  bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.staled }

// bucket holds a run of consecutively scheduled events of one cycle in
// insertion (FIFO) order. head is the next dispatch position; entries
// before it have already been delivered or skipped as stale.
type bucket struct {
	events []*Event
	head   int
}

// heapEntry is one occupied bucket in the min-heap: its cycle, its
// creation sequence (the within-cycle FIFO tie-break) and its slab
// index. Pure values — heap operations touch no pointers.
type heapEntry struct {
	at  units.Cycles
	seq uint64
	idx int32
}

// arenaChunk is the number of Event structs allocated at once. One
// chunk allocation amortizes over this many Schedule calls.
const arenaChunk = 256

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	// heap is a min-heap over the occupied buckets, ordered by cycle
	// then creation sequence.
	heap []heapEntry
	// buckets is the slab the heap indexes into; freeIdx recycles
	// exhausted shells (and their event slices).
	buckets []bucket
	freeIdx []int32
	// lastIdx/lastAt cache the most recently opened bucket (index+1; 0
	// means none): a same-cycle burst appends without a heap operation.
	lastIdx int32
	lastAt  units.Cycles
	// seq numbers buckets in creation order for the FIFO tie-break.
	seq uint64

	// live counts pending (scheduled, not yet fired, not cancelled)
	// events so Len is O(1) — it is called on cancellation drain paths.
	live int
	now  units.Cycles

	// arena is the current Event chunk; arenaUsed its fill level.
	// Handles returned by Schedule stay valid forever (chunks are never
	// reused), they just stop costing one allocation each.
	arena     []Event
	arenaUsed int
}

// Now returns the current simulation time: the fire time of the most
// recently dispatched event.
func (q *Queue) Now() units.Cycles { return q.now }

// Len returns the number of pending (non-cancelled) events. It is O(1):
// the queue keeps a live counter instead of scanning for stale entries.
func (q *Queue) Len() int { return q.live }

// allocEvent carves one Event from the chunked arena.
//
//chimera:hot
func (q *Queue) allocEvent(at units.Cycles, fire func(now units.Cycles)) *Event {
	if q.arenaUsed == len(q.arena) {
		q.arena = make([]Event, arenaChunk) //chimera:allow hotalloc arena refill: one allocation amortized over arenaChunk Schedule calls
		q.arenaUsed = 0
	}
	e := &q.arena[q.arenaUsed]
	q.arenaUsed++
	*e = Event{At: at, Fire: fire}
	return e
}

// openBucket recycles (or creates) an empty bucket shell and returns
// its slab index.
//
//chimera:hot
func (q *Queue) openBucket() int32 {
	if n := len(q.freeIdx); n > 0 {
		idx := q.freeIdx[n-1]
		q.freeIdx = q.freeIdx[:n-1]
		return idx
	}
	q.buckets = append(q.buckets, bucket{})
	return int32(len(q.buckets) - 1)
}

// releaseMin retires the exhausted minimum bucket: its heap entry pops
// and its shell goes back on the free list.
//
//chimera:hot
func (q *Queue) releaseMin() {
	idx := q.heap[0].idx
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.down(0)
	}
	b := &q.buckets[idx]
	clear(b.events)
	b.events = b.events[:0]
	b.head = 0
	if q.lastIdx == idx+1 {
		q.lastIdx = 0
	}
	q.freeIdx = append(q.freeIdx, idx)
}

// Schedule enqueues fire to run at cycle at. Scheduling in the past (at <
// Now) is a programming error and panics: a discrete-event simulation
// that silently reorders time produces corrupt results.
//
//chimera:hot
func (q *Queue) Schedule(at units.Cycles, fire func(now units.Cycles)) *Event {
	if at < q.now {
		panic("eventq: scheduling into the past")
	}
	e := q.allocEvent(at, fire)
	if li := q.lastIdx; li != 0 && q.lastAt == at {
		b := &q.buckets[li-1]
		b.events = append(b.events, e)
	} else {
		idx := q.openBucket()
		b := &q.buckets[idx]
		b.events = append(b.events, e)
		q.seq++
		q.heap = append(q.heap, heapEntry{at: at, seq: q.seq, idx: idx})
		q.up(len(q.heap) - 1)
		q.lastIdx = idx + 1
		q.lastAt = at
	}
	q.live++
	return e
}

// ScheduleAfter enqueues fire to run delay cycles after the current time.
//
//chimera:hot
func (q *Queue) ScheduleAfter(delay units.Cycles, fire func(now units.Cycles)) *Event {
	return q.Schedule(q.now+delay, fire)
}

// Cancel removes an event from the queue if it has not fired. Cancelling
// is O(1): the event is marked stale and skipped when its bucket drains.
//
//chimera:hot
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.staled {
		return
	}
	e.staled = true
	if !e.fired {
		q.live--
	}
}

// peek returns the next pending event without dispatching it, skipping
// (and discarding) stale entries and exhausted buckets along the way.
//
//chimera:hot
func (q *Queue) peek() *Event {
	for len(q.heap) > 0 {
		b := &q.buckets[q.heap[0].idx]
		for b.head < len(b.events) {
			if e := b.events[b.head]; !e.staled {
				return e
			}
			b.head++
		}
		q.releaseMin()
	}
	return nil
}

// Step dispatches the next pending event and returns true, or returns
// false when the queue is empty.
//
//chimera:hot
func (q *Queue) Step() bool {
	e := q.peek()
	if e == nil {
		return false
	}
	// peek left the event at the minimum bucket's head.
	b := &q.buckets[q.heap[0].idx]
	b.head++
	if b.head == len(b.events) {
		q.releaseMin()
	}
	e.fired = true
	q.live--
	q.now = e.At
	e.Fire(e.At)
	return true
}

// RunUntil dispatches events until the queue is exhausted or the next
// event would fire after limit. It returns the number of events run. The
// simulation clock is left at the fire time of the last dispatched event
// (or advanced to limit if nothing remained before it).
func (q *Queue) RunUntil(limit units.Cycles) int {
	n, _ := q.RunUntilDone(limit, nil)
	return n
}

// RunUntilDone is RunUntil with cooperative cancellation: before every
// event dispatch it polls done (a context's Done channel; nil disables
// the check) and stops as soon as it is closed. It returns the number of
// events dispatched and whether the run was cancelled. On cancellation
// the clock stays at the last dispatched event's time — it is NOT
// advanced to limit — and pending events remain queued; callers that
// abandon the simulation should follow up with Clear.
//
//chimera:hot
func (q *Queue) RunUntilDone(limit units.Cycles, done <-chan struct{}) (n int, cancelled bool) {
	for {
		if done != nil {
			select {
			case <-done:
				return n, true
			default:
			}
		}
		e := q.peek()
		if e == nil || e.At > limit {
			break
		}
		q.Step()
		n++
	}
	if q.now < limit {
		q.now = limit
	}
	return n, false
}

// Clear cancels and discards every pending event, leaving the queue
// empty at the current time. It is the cleanup step of an abandoned
// (cancelled) simulation: no callback fires, no event survives.
func (q *Queue) Clear() {
	for _, he := range q.heap {
		b := &q.buckets[he.idx]
		for _, e := range b.events[b.head:] {
			e.staled = true
		}
		clear(b.events)
		b.events = b.events[:0]
		b.head = 0
		q.freeIdx = append(q.freeIdx, he.idx)
	}
	q.heap = q.heap[:0]
	q.lastIdx = 0
	q.live = 0
}

// Run dispatches events until the queue is empty and returns the number
// of events run.
func (q *Queue) Run() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}

// less orders heap entries by cycle, then by bucket creation sequence:
// a bucket opened earlier holds only events scheduled before every
// event of a later bucket at the same cycle, so (cycle, sequence) plus
// in-bucket append order is exactly global FIFO within a cycle.
//
//chimera:hot
func (q *Queue) less(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

//chimera:hot
func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

//chimera:hot
func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(q.heap[right], q.heap[left]) {
			smallest = right
		}
		if !q.less(q.heap[smallest], q.heap[i]) {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
