// Package eventq implements the deterministic discrete-event queue that
// drives the GPU simulation. Events are ordered by cycle; events at the
// same cycle are delivered in insertion order (FIFO) so that simulation
// outcomes do not depend on heap internals.
package eventq

import "chimera/internal/units"

// Event is a callback scheduled to run at a simulation time. The cycle at
// which it fires is passed back to the callback.
type Event struct {
	At     units.Cycles
	Fire   func(now units.Cycles)
	seq    uint64
	index  int
	staled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.staled }

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	heap []*Event
	seq  uint64
	now  units.Cycles
}

// Now returns the current simulation time: the fire time of the most
// recently dispatched event.
func (q *Queue) Now() units.Cycles { return q.now }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events still occupy the heap until popped but are not counted.
func (q *Queue) Len() int {
	n := 0
	for _, e := range q.heap {
		if !e.staled {
			n++
		}
	}
	return n
}

// Schedule enqueues fire to run at cycle at. Scheduling in the past (at <
// Now) is a programming error and panics: a discrete-event simulation
// that silently reorders time produces corrupt results.
func (q *Queue) Schedule(at units.Cycles, fire func(now units.Cycles)) *Event {
	if at < q.now {
		panic("eventq: scheduling into the past")
	}
	e := &Event{At: at, Fire: fire, seq: q.seq}
	q.seq++
	q.push(e)
	return e
}

// ScheduleAfter enqueues fire to run delay cycles after the current time.
func (q *Queue) ScheduleAfter(delay units.Cycles, fire func(now units.Cycles)) *Event {
	return q.Schedule(q.now+delay, fire)
}

// Cancel removes an event from the queue if it has not fired. Cancelling
// is O(1): the event is marked stale and discarded when it reaches the
// top of the heap.
func (q *Queue) Cancel(e *Event) {
	if e != nil {
		e.staled = true
	}
}

// Step dispatches the next pending event and returns true, or returns
// false when the queue is empty.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		e := q.pop()
		if e.staled {
			continue
		}
		q.now = e.At
		e.Fire(e.At)
		return true
	}
	return false
}

// RunUntil dispatches events until the queue is exhausted or the next
// event would fire after limit. It returns the number of events run. The
// simulation clock is left at the fire time of the last dispatched event
// (or advanced to limit if nothing remained before it).
func (q *Queue) RunUntil(limit units.Cycles) int {
	n, _ := q.RunUntilDone(limit, nil)
	return n
}

// RunUntilDone is RunUntil with cooperative cancellation: before every
// event dispatch it polls done (a context's Done channel; nil disables
// the check) and stops as soon as it is closed. It returns the number of
// events dispatched and whether the run was cancelled. On cancellation
// the clock stays at the last dispatched event's time — it is NOT
// advanced to limit — and pending events remain queued; callers that
// abandon the simulation should follow up with Clear.
func (q *Queue) RunUntilDone(limit units.Cycles, done <-chan struct{}) (n int, cancelled bool) {
	for {
		if done != nil {
			select {
			case <-done:
				return n, true
			default:
			}
		}
		e := q.peek()
		if e == nil || e.At > limit {
			break
		}
		q.Step()
		n++
	}
	if q.now < limit {
		q.now = limit
	}
	return n, false
}

// Clear cancels and discards every pending event, leaving the queue
// empty at the current time. It is the cleanup step of an abandoned
// (cancelled) simulation: no callback fires, no event survives.
func (q *Queue) Clear() {
	for _, e := range q.heap {
		e.staled = true
		e.index = -1
	}
	q.heap = nil
}

// Run dispatches events until the queue is empty and returns the number
// of events run.
func (q *Queue) Run() int {
	n := 0
	for q.Step() {
		n++
	}
	return n
}

func (q *Queue) peek() *Event {
	for len(q.heap) > 0 {
		e := q.heap[0]
		if !e.staled {
			return e
		}
		q.pop()
	}
	return nil
}

// less orders events by time, breaking ties by insertion sequence so that
// same-cycle events fire in the order they were scheduled.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

func (q *Queue) pop() *Event {
	n := len(q.heap) - 1
	q.swap(0, n)
	e := q.heap[n]
	q.heap[n] = nil
	q.heap = q.heap[:n]
	if n > 0 {
		q.down(0)
	}
	e.index = -1
	return e
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
