package eventq

import (
	"testing"

	"chimera/internal/units"
)

// nop is the shared no-op payload so benches measure the queue, not the
// callbacks.
func nop(units.Cycles) {}

// BenchmarkEventQSameCycleBurst is the engine's dominant pattern: bursts
// of events landing on the same cycle (a preemption plan freezing
// several blocks, a rebalance arming a batch of completions), drained in
// FIFO order. One iteration schedules and dispatches 64 events spread
// over 8 distinct cycles.
func BenchmarkEventQSameCycleBurst(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := q.Now()
		for c := units.Cycles(0); c < 8; c++ {
			for j := 0; j < 8; j++ {
				q.Schedule(base+c, nop)
			}
		}
		q.RunUntil(base + 8)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*64), "ns/event")
}

// BenchmarkEventQSpread schedules each event on its own cycle — the
// worst case for bucket sharing, exercising the occupied-cycle heap.
func BenchmarkEventQSpread(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := q.Now()
		for c := units.Cycles(0); c < 64; c++ {
			q.Schedule(base+c, nop)
		}
		q.RunUntil(base + 64)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*64), "ns/event")
}

// BenchmarkEventQCancel measures the cancel-heavy path: half the
// scheduled events are cancelled before dispatch (the engine cancels a
// completion/breach event pair on every preemption).
func BenchmarkEventQCancel(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	handles := make([]*Event, 64)
	for i := 0; i < b.N; i++ {
		base := q.Now()
		for j := range handles {
			handles[j] = q.Schedule(base+units.Cycles(j%8), nop)
		}
		for j := 0; j < len(handles); j += 2 {
			q.Cancel(handles[j])
		}
		q.RunUntil(base + 8)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*64), "ns/event")
}

// BenchmarkEventQLen pins the O(1) Len contract under load: the queue
// holds thousands of pending events (some stale) while Len is polled,
// the cancellation-drain access pattern.
func BenchmarkEventQLen(b *testing.B) {
	var q Queue
	handles := make([]*Event, 4096)
	for j := range handles {
		handles[j] = q.Schedule(units.Cycles(j%512), nop)
	}
	for j := 0; j < len(handles); j += 3 {
		q.Cancel(handles[j])
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += q.Len()
	}
	if sink == 0 {
		b.Fatal("Len never saw the pending events")
	}
}

// TestLenIsLiveCounter is the regression test for the O(1) Len rewrite:
// the count must stay exact through fires, cancels, cancel-after-fire
// (the engine cancels breach events that may already have fired),
// double-cancel and Clear — none of which may scan the queue.
func TestLenIsLiveCounter(t *testing.T) {
	var q Queue
	a := q.Schedule(1, nop)
	bb := q.Schedule(1, nop)
	c := q.Schedule(2, nop)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	q.Cancel(a)
	q.Cancel(a) // double-cancel must not double-decrement
	if q.Len() != 2 {
		t.Fatalf("Len after cancel = %d, want 2", q.Len())
	}
	if !q.Step() { // fires bb
		t.Fatal("Step found nothing")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after step = %d, want 1", q.Len())
	}
	q.Cancel(bb) // cancel-after-fire: Cancelled() flips, Len must not
	if !bb.Cancelled() {
		t.Error("cancel-after-fire did not mark the event cancelled")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancel-after-fire = %d, want 1", q.Len())
	}
	q.Cancel(c)
	if q.Len() != 0 {
		t.Fatalf("Len after last cancel = %d, want 0", q.Len())
	}
	if q.Run() != 0 {
		t.Error("cancelled events fired")
	}
	// Refill and Clear.
	for i := 0; i < 10; i++ {
		q.Schedule(q.Now()+units.Cycles(i), nop)
	}
	if q.Len() != 10 {
		t.Fatalf("Len after refill = %d, want 10", q.Len())
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", q.Len())
	}
}

// TestScheduleSteadyStateAllocs pins the allocation budget of the hot
// path: once the queue's arena and bucket free list are warm, a
// schedule+dispatch cycle must allocate (amortized) well under one
// object per event — the pooled design's whole point.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	var q Queue
	// Warm the arena, the bucket free list and the heap slice.
	for i := 0; i < 4*arenaChunk; i++ {
		q.Schedule(q.Now()+units.Cycles(i%16), nop)
	}
	q.Run()
	avg := testing.AllocsPerRun(2000, func() {
		base := q.Now()
		for j := 0; j < 8; j++ {
			q.Schedule(base+units.Cycles(j%2), nop)
		}
		q.RunUntil(base + 2)
	})
	// 8 events per run; one arenaChunk allocation per 256 events plus
	// occasional slice growth amortizes far below 1 alloc per run.
	if avg > 0.5 {
		t.Fatalf("steady-state allocations = %.3f per 8-event run, want <= 0.5", avg)
	}
}
