package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"chimera/internal/units"
)

func TestTimeOrdering(t *testing.T) {
	var q Queue
	var got []int
	for i, at := range []units.Cycles{50, 10, 30, 20, 40} {
		i := i
		q.Schedule(at, func(units.Cycles) { got = append(got, i) })
	}
	q.Run()
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func(units.Cycles) { got = append(got, i) })
	}
	q.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events out of insertion order: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	var q Queue
	var at units.Cycles
	q.Schedule(77, func(now units.Cycles) { at = now })
	q.Run()
	if at != 77 || q.Now() != 77 {
		t.Errorf("fire time %d, Now %d; want 77", at, q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(100, func(units.Cycles) {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	q.Schedule(50, func(units.Cycles) {})
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(10, func(units.Cycles) { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	q.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	var q Queue
	q.Cancel(nil) // must not panic
}

func TestLenExcludesCancelled(t *testing.T) {
	var q Queue
	a := q.Schedule(1, func(units.Cycles) {})
	q.Schedule(2, func(units.Cycles) {})
	q.Cancel(a)
	if n := q.Len(); n != 1 {
		t.Errorf("Len() = %d, want 1", n)
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []units.Cycles
	for _, at := range []units.Cycles{10, 20, 30, 40} {
		q.Schedule(at, func(now units.Cycles) { got = append(got, now) })
	}
	n := q.RunUntil(25)
	if n != 2 || len(got) != 2 {
		t.Fatalf("RunUntil(25) ran %d events (%v), want 2", n, got)
	}
	if q.Now() != 25 {
		t.Errorf("Now() = %d after RunUntil(25)", q.Now())
	}
	// Boundary: an event exactly at the limit fires.
	n = q.RunUntil(30)
	if n != 1 || q.Now() != 30 {
		t.Errorf("RunUntil(30) ran %d, now %d", n, q.Now())
	}
}

func TestScheduleAfter(t *testing.T) {
	var q Queue
	var at units.Cycles
	q.Schedule(100, func(now units.Cycles) {
		q.ScheduleAfter(50, func(now units.Cycles) { at = now })
	})
	q.Run()
	if at != 150 {
		t.Errorf("ScheduleAfter fired at %d, want 150", at)
	}
}

func TestReentrantScheduling(t *testing.T) {
	// Events scheduled at the current cycle from within a handler must
	// still fire, after already-queued same-cycle events.
	var q Queue
	var got []string
	q.Schedule(10, func(now units.Cycles) {
		got = append(got, "a")
		q.Schedule(now, func(units.Cycles) { got = append(got, "c") })
	})
	q.Schedule(10, func(units.Cycles) { got = append(got, "b") })
	q.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("reentrant order %v, want [a b c]", got)
	}
}

func TestStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// TestDispatchOrderProperty checks against a sorted reference on random
// schedules: events fire in non-decreasing time, ties in insertion order.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		r := rand.New(rand.NewSource(seed))
		var q Queue
		times := make([]units.Cycles, n)
		var fired []int
		for i := 0; i < n; i++ {
			times[i] = units.Cycles(r.Intn(20))
			i := i
			q.Schedule(times[i], func(units.Cycles) { fired = append(fired, i) })
		}
		q.Run()
		if len(fired) != n {
			return false
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return times[want[a]] < times[want[b]] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCancelProperty: random cancellations never fire and never disturb
// the order of survivors.
func TestCancelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		const n = 60
		events := make([]*Event, n)
		cancelled := make([]bool, n)
		var fired []int
		for i := 0; i < n; i++ {
			i := i
			events[i] = q.Schedule(units.Cycles(r.Intn(30)), func(units.Cycles) { fired = append(fired, i) })
		}
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				q.Cancel(events[i])
				cancelled[i] = true
			}
		}
		q.Run()
		seen := make(map[int]bool)
		for _, i := range fired {
			if cancelled[i] || seen[i] {
				return false
			}
			seen[i] = true
		}
		for i := 0; i < n; i++ {
			if !cancelled[i] && !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilDoneCancels(t *testing.T) {
	var q Queue
	done := make(chan struct{})
	fired := 0
	for i := 0; i < 10; i++ {
		at := units.Cycles(i * 10)
		q.Schedule(at, func(now units.Cycles) {
			fired++
			if fired == 3 {
				close(done) // cancel mid-run
			}
		})
	}
	n, cancelled := q.RunUntilDone(1000, done)
	if !cancelled {
		t.Fatal("expected cancellation")
	}
	if n != 3 || fired != 3 {
		t.Fatalf("dispatched %d events (fired %d), want 3", n, fired)
	}
	if q.Now() != 20 {
		t.Fatalf("clock advanced to %v after cancel, want 20 (not the limit)", q.Now())
	}
	if q.Len() != 7 {
		t.Fatalf("pending after cancel = %d, want 7", q.Len())
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("pending after Clear = %d, want 0", q.Len())
	}
	// A cleared queue is still usable at the current time.
	ran := false
	q.Schedule(q.Now()+5, func(units.Cycles) { ran = true })
	if n, cancelled := q.RunUntilDone(1000, nil); n != 1 || cancelled || !ran {
		t.Fatalf("post-Clear run: n=%d cancelled=%v ran=%v", n, cancelled, ran)
	}
}

func TestRunUntilDoneNilDoneMatchesRunUntil(t *testing.T) {
	var a, b Queue
	countA, countB := 0, 0
	for i := 0; i < 5; i++ {
		at := units.Cycles(i)
		a.Schedule(at, func(units.Cycles) { countA++ })
		b.Schedule(at, func(units.Cycles) { countB++ })
	}
	na := a.RunUntil(100)
	nb, cancelled := b.RunUntilDone(100, nil)
	if cancelled || na != nb || countA != countB || a.Now() != b.Now() {
		t.Fatalf("RunUntilDone(nil) diverges from RunUntil: %d/%d events, now %v/%v", nb, na, b.Now(), a.Now())
	}
}

func TestRunUntilDoneAlreadyCancelled(t *testing.T) {
	var q Queue
	done := make(chan struct{})
	close(done)
	q.Schedule(1, func(units.Cycles) { t.Fatal("event fired after pre-cancel") })
	n, cancelled := q.RunUntilDone(100, done)
	if n != 0 || !cancelled {
		t.Fatalf("n=%d cancelled=%v, want 0/true", n, cancelled)
	}
}
