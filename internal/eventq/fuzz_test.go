package eventq

import (
	"math/rand"
	"testing"

	"chimera/internal/units"
)

// modelEvent is the reference model's view of one scheduled event: a
// (time, insertion-sequence) pair with a cancellation flag. The model
// dispatches by scanning for the minimum (at, seq) — obviously correct,
// no heap involved.
type modelEvent struct {
	id        int
	at        units.Cycles
	cancelled bool
	fired     bool
}

// model is the executable specification the fuzzed Queue is compared
// against.
type model struct {
	events []*modelEvent
	now    units.Cycles
}

func (m *model) next() *modelEvent {
	var best *modelEvent
	for _, e := range m.events {
		if e.cancelled || e.fired {
			continue
		}
		// Insertion order (slice order) breaks ties, which is exactly
		// the FIFO-within-cycle contract.
		if best == nil || e.at < best.at {
			best = e
		}
	}
	return best
}

func (m *model) step() (int, bool) {
	e := m.next()
	if e == nil {
		return 0, false
	}
	e.fired = true
	m.now = e.at
	return e.id, true
}

func (m *model) pending() int {
	n := 0
	for _, e := range m.events {
		if !e.cancelled && !e.fired {
			n++
		}
	}
	return n
}

// FuzzEventQ interprets the fuzz input as a little opcode program over a
// Queue — schedule, cancel, step, run-until, clear — and checks every
// observable (fire order, clock, pending count) against the reference
// model after each operation.
func FuzzEventQ(f *testing.F) {
	f.Add([]byte{0, 5, 0, 0, 0, 3, 2, 0, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 4, 10, 5, 6})
	f.Add([]byte{1, 7, 1, 7, 2, 1, 4, 200})
	f.Fuzz(func(t *testing.T, program []byte) {
		var q Queue
		var m model
		var fired []int // ids in Queue dispatch order
		nextID := 0

		// arg pulls the next program byte (0 when the program ran out).
		i := 0
		arg := func() byte {
			if i >= len(program) {
				return 0
			}
			b := program[i]
			i++
			return b
		}
		handles := make(map[int]*Event)

		schedule := func(delay units.Cycles) {
			id := nextID
			nextID++
			at := q.Now() + delay
			handles[id] = q.Schedule(at, func(now units.Cycles) {
				if now != at {
					t.Fatalf("event %d fired at %v, scheduled for %v", id, now, at)
				}
				fired = append(fired, id)
			})
			m.events = append(m.events, &modelEvent{id: id, at: at})
		}

		for i < len(program) {
			switch op := arg(); op % 6 {
			case 0, 1: // schedule at now + small delay (two ops: bias toward collisions)
				schedule(units.Cycles(arg() % 8))
			case 2: // cancel one prior event (stale-entry path)
				if nextID > 0 {
					id := int(arg()) % nextID
					q.Cancel(handles[id])
					for _, e := range m.events {
						if e.id == id && !e.fired {
							e.cancelled = true
						}
					}
				}
			case 3: // step once
				id, ok := m.step()
				if got := q.Step(); got != ok {
					t.Fatalf("Step() = %v, model says %v", got, ok)
				} else if ok {
					if len(fired) == 0 || fired[len(fired)-1] != id {
						t.Fatalf("dispatched %v, model expected event %d", fired, id)
					}
					if q.Now() != m.now {
						t.Fatalf("Now() = %v after step, model at %v", q.Now(), m.now)
					}
				}
			case 4: // run until a horizon
				limit := q.Now() + units.Cycles(arg()%16)
				var ids []int
				for {
					e := m.next()
					if e == nil || e.at > limit {
						break
					}
					id, _ := m.step()
					ids = append(ids, id)
				}
				if m.now < limit {
					m.now = limit
				}
				if got := q.RunUntil(limit); got != len(ids) {
					t.Fatalf("RunUntil(%v) = %d events, model ran %d", limit, got, len(ids))
				}
				for j, id := range ids {
					if fired[len(fired)-len(ids)+j] != id {
						t.Fatalf("RunUntil dispatch order %v, model expected %v",
							fired[len(fired)-len(ids):], ids)
					}
				}
				if q.Now() != m.now {
					t.Fatalf("Now() = %v after RunUntil, model at %v", q.Now(), m.now)
				}
			case 5: // clear everything
				q.Clear()
				for _, e := range m.events {
					if !e.fired {
						e.cancelled = true
					}
				}
			}
			if q.Len() != m.pending() {
				t.Fatalf("Len() = %d, model has %d pending", q.Len(), m.pending())
			}
		}

		// Drain: the remaining dispatch order must match the model's.
		for {
			id, ok := m.step()
			if !ok {
				break
			}
			if !q.Step() {
				t.Fatalf("queue empty, model still had event %d", id)
			}
			if fired[len(fired)-1] != id {
				t.Fatalf("drain dispatched %d, model expected %d", fired[len(fired)-1], id)
			}
		}
		if q.Step() {
			t.Fatal("queue dispatched an event the model did not have")
		}
	})
}

// TestFIFOWithinTimestampProperty hammers the documented tie-break: many
// events land on few distinct cycles, a random subset is cancelled, and
// the dispatch order must still be (cycle, insertion order) with the
// cancelled ones absent.
func TestFIFOWithinTimestampProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		const n = 200
		type rec struct {
			id int
			at units.Cycles
		}
		var want []rec
		handles := make([]*Event, n)
		for id := 0; id < n; id++ {
			at := units.Cycles(rng.Intn(5)) // heavy collisions
			handles[id] = q.Schedule(at, nil)
			want = append(want, rec{id: id, at: at})
		}
		cancelled := make(map[int]bool)
		for _, id := range rng.Perm(n)[:n/4] {
			q.Cancel(handles[id])
			cancelled[id] = true
		}
		// Expected order: stable sort by cycle preserves insertion order
		// within a timestamp; Go's sort.SliceStable is the specification
		// here, but a counting pass keeps it independent of sort at all.
		var expect []rec
		for at := units.Cycles(0); at < 5; at++ {
			for _, r := range want {
				if r.at == at && !cancelled[r.id] {
					expect = append(expect, r)
				}
			}
		}
		var got []int
		for id := range handles {
			id := id
			if !cancelled[id] {
				handles[id].Fire = func(units.Cycles) { got = append(got, id) }
			}
		}
		if ran := q.Run(); ran != len(expect) {
			t.Fatalf("trial %d: ran %d events, want %d", trial, ran, len(expect))
		}
		for i, r := range expect {
			if got[i] != r.id {
				t.Fatalf("trial %d: position %d dispatched event %d, want %d (cycle %v)",
					trial, i, got[i], r.id, r.at)
			}
		}
	}
}
