// Package cluster is the fleet tier over chimerad: a deterministic
// consistent-hash ring that assigns every job (by its jobspec content
// hash) to one owning replica, a bounded-stale membership view over a
// static seed list, a peer result-cache protocol that lets any replica
// (or the front proxy) fetch a finished result from the hash-owner
// instead of recomputing it, and the chimerafront proxy that admits
// jobs fleet-wide with load shedding and routes them to replicas with
// failover.
//
// Correctness never depends on the cluster tier: every peer-cache miss,
// fetch error or dead owner falls through to a local recompute, and the
// simulation itself stays bit-deterministic per spec. The protocol and
// its failure semantics are documented in docs/cluster.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default number of virtual nodes each member
// contributes to the ring. 64 points per member keeps the ownership
// split within a few percent of even for small fleets while keeping
// ring construction trivially cheap.
const DefaultVNodes = 64

// point is one virtual node: a position on the 64-bit hash circle and
// the member that owns it.
type point struct {
	pos    uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a fixed member list.
// Keys (jobspec content hashes) map to the member owning the first
// virtual node at or clockwise after the key's position; Sequence
// yields the full failover order. Construction is deterministic: the
// same member list and vnode count always produce the same ring, on
// every process, so independently-built rings (front, replicas,
// clients) agree on ownership without any coordination.
type Ring struct {
	members []string
	points  []point
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (vnodes <= 0 uses DefaultVNodes). The member list is deduplicated
// and sorted, so callers need not agree on seed-list order, only on
// its contents.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || uniq[m] {
			continue
		}
		uniq[m] = true
		ms = append(ms, m)
	}
	sort.Strings(ms)
	r := &Ring{members: ms, points: make([]point, 0, len(ms)*vnodes)}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{pos: hash64(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Virtual-node position collisions are astronomically rare but
		// must still break deterministically: lowest member index wins.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// hash64 positions a string on the ring: FNV-1a (64-bit) followed by a
// splitmix64-style finalizer. Raw FNV-1a avalanches poorly on the short
// near-identical strings virtual nodes are named with ("m#0", "m#1",
// …): without the finalizer every member's vnodes land in one tight
// band and the ring degenerates to one effective point per member.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the ring's member list in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len reports the number of distinct members on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.members) == 0 {
		return ""
	}
	return r.members[r.points[r.search(key)].member]
}

// search finds the index of the first virtual node at or clockwise
// after key's position (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns every member in ring order starting from key's
// owner: the deterministic failover order a router walks when the
// owner is dead. All members appear exactly once.
func (r *Ring) Sequence(key string) []string {
	if len(r.members) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
