package cluster

import (
	"context"
	"sort"
	"sync"
)

// ProbeFunc checks one member's health; a nil error means alive. The
// HTTP implementation (a GET on /healthz) lives in the daemons, which
// own real clocks and transports — this package only consumes the
// verdicts, so its view stays free of wallclock reads.
type ProbeFunc func(ctx context.Context, member string) error

// Membership is a bounded-stale health view over a static seed list.
// There is no gossip and no external dependency: the member set is
// fixed at construction (the fleet's seed list), and liveness is
// whatever the last probe round — or the last MarkDown/MarkUp from a
// failed or recovered request — observed. Staleness is bounded by the
// caller's probe cadence plus the demand-driven marks; routing through
// a stale view is safe because every consumer (front, ring-aware
// client, peer cache) falls over to the next member or to a local
// recompute when a listed member turns out to be dead.
type Membership struct {
	members []string // sorted, immutable

	mu   sync.Mutex
	down map[string]bool
}

// NewMembership builds a view over the seed list with every member
// presumed alive. The list is deduplicated and sorted, mirroring
// NewRing's canonicalization.
func NewMembership(members []string) *Membership {
	r := NewRing(members, 1) // reuse the canonicalization
	return &Membership{members: r.Members(), down: make(map[string]bool)}
}

// Members returns the full (alive + down) member list in sorted order.
// The slice is shared; callers must not mutate it.
func (m *Membership) Members() []string { return m.members }

// Alive returns the members currently presumed alive, in sorted order.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members))
	for _, mem := range m.members {
		if !m.down[mem] {
			out = append(out, mem)
		}
	}
	return out
}

// IsAlive reports whether member is currently presumed alive. Unknown
// members are dead: they are not part of the fleet.
func (m *Membership) IsAlive(member string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.isAliveLocked(member)
}

// isAliveLocked is IsAlive under m.mu.
func (m *Membership) isAliveLocked(member string) bool {
	i := sort.SearchStrings(m.members, member)
	if i >= len(m.members) || m.members[i] != member {
		return false
	}
	return !m.down[member]
}

// MarkDown records a demand-driven death observation (a failed request
// or probe); the member stops appearing in Alive until a probe or
// MarkUp revives it.
func (m *Membership) MarkDown(member string) {
	m.mu.Lock()
	m.down[member] = true
	m.mu.Unlock()
}

// MarkUp records a demand-driven recovery observation.
func (m *Membership) MarkUp(member string) {
	m.mu.Lock()
	delete(m.down, member)
	m.mu.Unlock()
}

// ProbeOnce runs one health round: every member is probed (in sorted
// order, sequentially — fleets are small) and the view is updated from
// the verdicts. It returns the number of members observed down. The
// caller owns the cadence; the view between rounds is bounded-stale by
// construction.
func (m *Membership) ProbeOnce(ctx context.Context, probe ProbeFunc) int {
	downCount := 0
	for _, mem := range m.members {
		err := probe(ctx, mem)
		m.mu.Lock()
		if err != nil {
			m.down[mem] = true
			downCount++
		} else {
			delete(m.down, mem)
		}
		m.mu.Unlock()
	}
	return downCount
}
