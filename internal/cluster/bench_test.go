// Fleet performance baselines (BENCH_cluster.json, `make bench`): ring
// routing cost, fleet job throughput through the front, and the
// cache-hit fast path that the fleet tier exists for.
package cluster_test

import (
	"context"
	"fmt"
	"testing"

	"chimera/internal/cluster"
	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

// BenchmarkFleetRingOwner measures one routing decision: spec hash →
// owning replica. This sits on every fleet submission.
func BenchmarkFleetRingOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	ring := cluster.NewRing(members, 0)
	keys := make([]string, 1024)
	for i := range keys {
		spec := jobspec.Solo("SAD").WithSeed(uint64(i + 1))
		spec.Normalize()
		keys[i] = spec.Hash()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ring.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

// BenchmarkFleetSubmit measures distinct-job throughput through the
// full fleet path: front admission, ring routing, replica execution.
// jobs/sec is 1e9/ns-per-op.
func BenchmarkFleetSubmit(b *testing.B) {
	f := bootFleet(b, 3)
	c := client.New(f.frontTS.URL)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := jobspec.Solo("SAD").WithWindowUs(50).WithSeed(uint64(1e6 + i))
		st, err := c.SubmitWait(ctx, spec)
		if err != nil || st.State != server.StateDone {
			b.Fatalf("job %d: %v %v", i, st.State, err)
		}
	}
}

// BenchmarkFleetCacheHit measures the duplicate fast path: the front
// serves a finished result straight from the owner's peer cache.
func BenchmarkFleetCacheHit(b *testing.B) {
	f := bootFleet(b, 3)
	c := client.New(f.frontTS.URL)
	ctx := context.Background()
	spec := jobspec.Solo("SAD").WithWindowUs(50).WithSeed(31337)
	if st, err := c.SubmitWait(ctx, spec); err != nil || st.State != server.StateDone {
		b.Fatalf("warmup: %v %v", st.State, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil || st.State != server.StateDone {
			b.Fatalf("dup %d: %v %v", i, st.State, err)
		}
		if !st.Deduped {
			b.Fatalf("dup %d recomputed", i)
		}
	}
}
