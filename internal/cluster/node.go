package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// CachePathPrefix is the peer result-cache route every replica serves:
// GET {replica}/internal/cache/{hash} answers 200 with the finished
// JobResult JSON when the replica holds a completed result for that
// jobspec content hash, and 404 otherwise. The route never computes
// anything — it is a pure read of the replica's finished-result index.
const CachePathPrefix = "/internal/cache/"

// ErrCacheMiss reports that a consulted peer does not hold the result
// (an HTTP 404 from the peer-cache route).
var ErrCacheMiss = errors.New("cluster: peer cache miss")

// FetchFunc retrieves the finished result for one jobspec hash from
// one member's peer cache. It returns ErrCacheMiss when the member
// answers 404 and a transport or status error otherwise; NewHTTPFetch
// is the production implementation, tests inject fakes.
type FetchFunc func(ctx context.Context, member, hash string) ([]byte, error)

// NewHTTPFetch returns a FetchFunc speaking the HTTP peer-cache
// protocol against member base URLs ("http://host:port"). The caller
// bounds each fetch through ctx — peer-cache reads sit on the job hot
// path, so daemons wrap them in a short deadline and treat any error
// as a miss.
func NewHTTPFetch(hc *http.Client) FetchFunc {
	if hc == nil {
		hc = http.DefaultClient
	}
	return func(ctx context.Context, member, hash string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+CachePathPrefix+hash, nil)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return io.ReadAll(io.LimitReader(resp.Body, 1<<24))
		case http.StatusNotFound:
			return nil, ErrCacheMiss
		default:
			return nil, fmt.Errorf("cluster: peer cache %s: unexpected status %d", member, resp.StatusCode)
		}
	}
}

// Node is one replica's view of the fleet: its own advertised base
// URL, the shared ring, and the fetch transport. A server configured
// with a Node consults the hash-owner's peer cache before recomputing
// a job another replica already finished, so a fleet of N approximates
// one shared memoizing cache. Every field is immutable after
// construction.
type Node struct {
	// Self is this replica's advertised base URL; Lookup never
	// consults it (its results are already local).
	Self string
	// Ring maps jobspec hashes to owning members. All replicas and the
	// front build the ring from the same seed list, so they agree on
	// ownership without coordination.
	Ring *Ring
	// Fetch retrieves one hash from one member's peer cache.
	Fetch FetchFunc
	// MaxPeers bounds how many members of the hash's failover sequence
	// are consulted (0 = 1, the owner alone). 2 additionally covers the
	// owner-died-and-successor-recomputed case at the cost of one more
	// round trip on a true miss.
	MaxPeers int
}

// Lookup asks the hash-owner peers for a finished result. It returns
// the payload and the member that served it; ErrCacheMiss when every
// consulted peer missed; and the last transport error when one peer
// failed and none hit. Self is skipped — a nil error never means
// "compute anyway", and any error means exactly that.
func (n *Node) Lookup(ctx context.Context, hash string) (payload []byte, from string, err error) {
	if n == nil || n.Ring == nil || n.Fetch == nil {
		return nil, "", ErrCacheMiss
	}
	max := n.MaxPeers
	if max <= 0 {
		max = 1
	}
	err = ErrCacheMiss
	consulted := 0
	for _, member := range n.Ring.Sequence(hash) {
		if member == n.Self {
			continue
		}
		if consulted >= max {
			break
		}
		consulted++
		b, ferr := n.Fetch(ctx, member, hash)
		if ferr == nil {
			return b, member, nil
		}
		if !errors.Is(ferr, ErrCacheMiss) {
			err = ferr
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
	}
	return nil, "", err
}
