// Fleet regression for the SLO jobspec fields: a spec carrying the new
// estimator/policy/deadline_ms fields must route through chimerafront
// and the peer result cache exactly like any other spec — byte-identical
// results against a single-node run, correct dedup across resubmission,
// and the documented identity rules (estimator splits the cache key,
// deadline does not).
package cluster_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func TestFleetSLOSpecRoundTrip(t *testing.T) {
	f := bootFleet(t, 3)
	ctx := context.Background()
	// An EDF periodic job under the online predictor, with a generous
	// deadline (never shed, never expired).
	spec := jobspec.Periodic("SAD", jobspec.PolicyEDF).
		WithWindowUs(300).WithConstraintUs(15).WithSeed(31).
		WithEstimator(jobspec.EstimatorOnline).WithDeadlineMs(60_000)

	// Single-node baseline.
	baseline := server.New(server.Config{Workers: 2})
	baseTS := httptest.NewServer(baseline.Handler())
	t.Cleanup(baseTS.Close)
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = baseline.Shutdown(sctx)
	})
	want, err := client.New(baseTS.URL).SubmitWait(ctx, spec)
	if err != nil || want.State != server.StateDone {
		t.Fatalf("baseline: %v %v", want.State, err)
	}

	// Through the front: byte-identical result, SLO fields echoed intact.
	c := client.New(f.frontTS.URL)
	st, err := c.SubmitWait(ctx, spec)
	if err != nil || st.State != server.StateDone {
		t.Fatalf("front submit: %v %v", st.State, err)
	}
	if !bytes.Equal(st.Result, want.Result) {
		t.Errorf("fleet result differs from single-node baseline:\nfleet: %s\nsolo:  %s", st.Result, want.Result)
	}
	if st.Spec.Estimator != jobspec.EstimatorOnline || st.Spec.Policy != jobspec.PolicyEDF || st.Spec.DeadlineMs != 60_000 {
		t.Errorf("SLO fields mangled in echo: %+v", st.Spec)
	}

	ranOnline := f.executed()

	// Resubmission dedups (the hash covers the new fields consistently
	// on both sides of the wire).
	again, err := c.SubmitWait(ctx, spec)
	if err != nil || again.State != server.StateDone {
		t.Fatalf("resubmit: %v %v", again.State, err)
	}
	if !again.Deduped || !bytes.Equal(again.Result, want.Result) {
		t.Errorf("resubmit not served from cache (deduped=%v)", again.Deduped)
	}

	// A different deadline is the same work: deadline_ms is scheduling
	// metadata, excluded from the cache identity.
	relaxed, err := c.SubmitWait(ctx, spec.WithDeadlineMs(120_000))
	if err != nil || relaxed.State != server.StateDone {
		t.Fatalf("relaxed-deadline submit: %v %v", relaxed.State, err)
	}
	if !relaxed.Deduped || !bytes.Equal(relaxed.Result, want.Result) {
		t.Errorf("deadline change broke dedup (deduped=%v)", relaxed.Deduped)
	}

	// Neither the resubmission nor the deadline change may have
	// re-executed anything: deadline_ms is scheduling metadata, outside
	// the cache identity.
	if got := f.executed(); got != ranOnline {
		t.Errorf("resubmits re-executed: %d simulations, want %d", got, ranOnline)
	}

	// A different estimator is different work: oracle and online runs
	// may schedule differently, so they must not share a cache entry.
	oracle, err := c.SubmitWait(ctx, spec.WithEstimator(jobspec.EstimatorOracle))
	if err != nil || oracle.State != server.StateDone {
		t.Fatalf("oracle submit: %v %v", oracle.State, err)
	}
	if oracle.Deduped {
		t.Error("oracle-estimator spec deduped against the online run — estimator missing from the identity")
	}

	// The oracle run executed fresh work (its periodic simulation, plus
	// a solo baseline if it landed on a replica that had not run one —
	// ring ownership depends on the test listeners' ports, so the exact
	// count varies between 1 and 2).
	extra := f.executed() - ranOnline
	if extra < 1 || extra > 2 {
		t.Errorf("oracle submission executed %d simulations, want 1 or 2", extra)
	}
}
