package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"chimera/internal/jobspec"
	"chimera/internal/metrics"
)

// Metric names the front publishes on its /metrics, as package-level
// constants (enforced by chimeravet's schemaconst analyzer) so
// docs/cluster.md cannot silently drift from the code.
const (
	// MetricFrontRouted counts submissions proxied to a replica.
	MetricFrontRouted = "front/jobs_routed"
	// MetricFrontShed counts submissions rejected by the fleet-wide
	// inflight cap (429 + Retry-After).
	MetricFrontShed = "front/shed"
	// MetricFrontFailovers counts submissions that skipped at least one
	// dead or refusing replica before landing.
	MetricFrontFailovers = "front/failovers"
	// MetricFrontCacheHits counts wait=1 submissions served straight
	// from a replica's peer cache without proxying the job.
	MetricFrontCacheHits = "front/cache_hits"
	// MetricFrontNoReplica counts requests refused because no replica
	// accepted them (503).
	MetricFrontNoReplica = "front/no_replica"
	// MetricFrontProxyErrors counts proxied requests that failed in
	// transport after the job question was already settled (reads).
	MetricFrontProxyErrors = "front/proxy_errors"
)

// FrontConfig parameterizes a Front.
type FrontConfig struct {
	// Replicas is the static seed list of replica base URLs
	// ("http://host:port"). Order is irrelevant — the list is
	// canonicalized exactly like the ring's.
	Replicas []string
	// VNodes is the ring's virtual-node count per replica (0 =
	// DefaultVNodes).
	VNodes int
	// MaxInflight caps concurrently-admitted submissions fleet-wide;
	// beyond it the front sheds with 429 + Retry-After (default 256).
	MaxInflight int
	// Transport issues the proxied requests (default
	// http.DefaultTransport).
	Transport http.RoundTripper
	// Registry receives the front/* metrics (default: a fresh registry,
	// exposed via Registry()).
	Registry *metrics.Registry
	// Fetch overrides the peer-cache fetch (default: HTTP over
	// Transport). Tests inject fakes.
	Fetch FetchFunc
	// CacheTimeout bounds one peer-cache lookup on the submit path
	// (default 250 ms); a slow peer must never cost more than this
	// before the job is simply routed for recompute.
	CacheTimeout time.Duration
}

// Front is the fleet's front proxy: it admits jobs fleet-wide (load
// shedding past MaxInflight), deduplicates finished work through the
// replicas' peer caches (reusing jobspec content hashes), and routes
// every submission to the replica owning its hash — failing over along
// the ring when the owner is dead or refusing. Create with NewFront,
// mount Handler on an http.Server, and drive ProbeOnce on the desired
// health cadence.
//
// Job IDs acquire a replica prefix on the way through ("r2.j15" is job
// j15 on the third replica of the canonical list), so status, result,
// trace and cancel requests route back to the replica that owns the
// job. IDs of the form "cache.<hash>" denote results served directly
// from the peer cache; their status and result routes answer from the
// cache as well.
type Front struct {
	cfg      FrontConfig
	ring     *Ring
	mem      *Membership
	hc       *http.Client
	fetch    FetchFunc
	reg      *metrics.Registry
	inflight atomic.Int64

	cRouted    *metrics.Counter
	cShed      *metrics.Counter
	cFailovers *metrics.Counter
	cCacheHits *metrics.Counter
	cNoReplica *metrics.Counter
	cProxyErrs *metrics.Counter
}

// NewFront builds a front proxy over the replica seed list.
func NewFront(cfg FrontConfig) *Front {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.CacheTimeout <= 0 {
		cfg.CacheTimeout = 250 * time.Millisecond
	}
	f := &Front{
		cfg:  cfg,
		ring: NewRing(cfg.Replicas, cfg.VNodes),
		mem:  NewMembership(cfg.Replicas),
		hc:   &http.Client{Transport: cfg.Transport},
		reg:  cfg.Registry,

		cRouted:    cfg.Registry.Counter(MetricFrontRouted),
		cShed:      cfg.Registry.Counter(MetricFrontShed),
		cFailovers: cfg.Registry.Counter(MetricFrontFailovers),
		cCacheHits: cfg.Registry.Counter(MetricFrontCacheHits),
		cNoReplica: cfg.Registry.Counter(MetricFrontNoReplica),
		cProxyErrs: cfg.Registry.Counter(MetricFrontProxyErrors),
	}
	f.fetch = cfg.Fetch
	if f.fetch == nil {
		f.fetch = NewHTTPFetch(f.hc)
	}
	return f
}

// Registry exposes the metrics registry the front reports into.
func (f *Front) Registry() *metrics.Registry { return f.reg }

// Membership exposes the front's health view (tests and the probe
// loop in cmd/chimerafront drive it).
func (f *Front) Membership() *Membership { return f.mem }

// Ring exposes the front's routing ring.
func (f *Front) Ring() *Ring { return f.ring }

// ProbeOnce runs one health round over the replicas (a GET on each
// /healthz through the front's transport) and returns the number
// observed down.
func (f *Front) ProbeOnce(ctx context.Context) int {
	return f.mem.ProbeOnce(ctx, func(ctx context.Context, member string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := f.hc.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		return nil
	})
}

// Handler returns the front's HTTP routes — the same public surface as
// one chimerad, plus the fleet-level peer-cache route.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", f.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", f.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", f.handleJob)
	mux.HandleFunc("GET "+CachePathPrefix+"{hash}", f.handleCache)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	return mux
}

// frontError renders the chimerad JSON error envelope.
func frontError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}

// targets returns the failover order for one hash: the ring sequence
// filtered to alive members. A fully-down view degrades to the
// unfiltered sequence — a stale "everyone is dead" verdict must not
// turn into fleet-wide unavailability when the replicas are fine.
func (f *Front) targets(hash string) []string {
	seq := f.ring.Sequence(hash)
	alive := make([]string, 0, len(seq))
	for _, m := range seq {
		if f.mem.IsAlive(m) {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return seq
	}
	return alive
}

// replicaIndex maps a member base URL to its index in the canonical
// (sorted) replica list, the index job-ID prefixes carry.
func (f *Front) replicaIndex(member string) int {
	for i, m := range f.ring.Members() {
		if m == member {
			return i
		}
	}
	return -1
}

// splitID parses a front job ID "r<i>.<local>" into the replica index
// and the replica-local ID.
func (f *Front) splitID(id string) (idx int, local string, ok bool) {
	rest, found := strings.CutPrefix(id, "r")
	if !found {
		return 0, "", false
	}
	num, local, found := strings.Cut(rest, ".")
	if !found || local == "" {
		return 0, "", false
	}
	idx, err := strconv.Atoi(num)
	if err != nil || idx < 0 || idx >= f.ring.Len() {
		return 0, "", false
	}
	return idx, local, true
}

// rewriteID prefixes the "id" field of a JobStatus JSON body with the
// replica index. Bodies that do not parse pass through untouched — the
// rewrite is cosmetic routing metadata, never correctness.
func rewriteID(raw []byte, idx int) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return raw
	}
	var id string
	if err := json.Unmarshal(m["id"], &id); err != nil || id == "" {
		return raw
	}
	nid, err := json.Marshal(fmt.Sprintf("r%d.%s", idx, id))
	if err != nil {
		return raw
	}
	m["id"] = nid
	out, err := json.Marshal(m)
	if err != nil {
		return raw
	}
	return out
}

// handleSubmit admits one job fleet-wide and routes it by jobspec
// content hash: shed past MaxInflight, peer-cache short-circuit for
// wait=1 submissions, then proxy along the hash's failover sequence.
// A connect error or 503 from a replica provably did not admit the
// job, so moving to the next replica preserves at-most-once admission.
func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if f.inflight.Add(1) > int64(f.cfg.MaxInflight) {
		f.inflight.Add(-1)
		f.cShed.Add(1)
		w.Header().Set("Retry-After", "1")
		frontError(w, http.StatusTooManyRequests, "front: fleet at capacity")
		return
	}
	defer f.inflight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		frontError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var spec jobspec.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		frontError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	spec.Normalize()
	hash := spec.Hash()
	wait := r.URL.Query().Get("wait") == "1"

	targets := f.targets(hash)
	if len(targets) == 0 {
		f.cNoReplica.Add(1)
		frontError(w, http.StatusServiceUnavailable, "front: no replica available")
		return
	}

	// Finished work is served without occupying any replica: ask the
	// hash owner's peer cache first. Only wait=1 submissions can be
	// answered this way — an async submitter expects a pollable job.
	// Traced jobs always execute (a trace is a side effect the cache
	// cannot replay), mirroring the replicas' own dedup rule.
	if wait && !spec.Trace {
		cctx, cancel := context.WithTimeout(r.Context(), f.cfg.CacheTimeout)
		payload, err := f.fetch(cctx, targets[0], hash)
		cancel()
		if err == nil {
			f.cCacheHits.Add(1)
			f.writeCacheStatus(w, hash, spec, payload)
			return
		}
	}

	submitPath := "/api/v1/jobs"
	if r.URL.RawQuery != "" {
		submitPath += "?" + r.URL.RawQuery
	}
	for i, t := range targets {
		resp, err := f.proxy(r.Context(), http.MethodPost, t, submitPath, body)
		if err != nil {
			// The request never produced a response; for POST /jobs both
			// chimerad and this front only reach a verdict after reading
			// the body, so a transport error here is overwhelmingly a
			// dead replica. Mark it down and walk the ring.
			f.mem.MarkDown(t)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Provably not admitted (draining or refusing); the replica
			// is leaving — stop routing to it.
			drainResponse(resp)
			f.mem.MarkDown(t)
			continue
		}
		f.mem.MarkUp(t)
		if i > 0 {
			f.cFailovers.Add(1)
		}
		f.cRouted.Add(1)
		f.relayStatus(w, resp, f.replicaIndex(t))
		return
	}
	f.cNoReplica.Add(1)
	frontError(w, http.StatusServiceUnavailable, "front: every replica refused the job")
}

// writeCacheStatus renders the synthesized terminal status of a
// peer-cache-served submission.
func (f *Front) writeCacheStatus(w http.ResponseWriter, hash string, spec jobspec.Spec, payload []byte) {
	// The envelope mirrors chimerad's JobStatus wire shape (docs/
	// server.md); cluster cannot import internal/server (the server
	// imports this package), so the mirror is deliberately minimal.
	st := map[string]any{
		"id":           "cache." + hash,
		"state":        "done",
		"spec":         spec,
		"deduped":      true,
		"result":       json.RawMessage(payload),
		"submitted_at": time.Time{},
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(st)
}

// proxy issues one request to a replica and returns the raw response.
func (f *Front) proxy(ctx context.Context, method, member, pathAndQuery string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, member+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return f.hc.Do(req)
}

// relayStatus copies a replica's JobStatus response to the client,
// rewriting the job ID (and Location header) with the replica prefix.
func (f *Front) relayStatus(w http.ResponseWriter, resp *http.Response, idx int) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		f.cProxyErrs.Add(1)
		frontError(w, http.StatusBadGateway, "front: relay: %v", err)
		return
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if loc := resp.Header.Get("Location"); loc != "" {
		if local, ok := strings.CutPrefix(loc, "/api/v1/jobs/"); ok {
			w.Header().Set("Location", fmt.Sprintf("/api/v1/jobs/r%d.%s", idx, local))
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		raw = rewriteID(raw, idx)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(raw)
}

// drainResponse discards a response body so the transport can reuse
// the connection.
func drainResponse(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// handleJob routes a status, result, trace or cancel request to the
// replica encoded in the job-ID prefix. "cache.<hash>" IDs answer from
// the peer cache. SSE status streams pass through verbatim (their
// frames carry the replica-local ID).
func (f *Front) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	suffix := ""
	if strings.HasSuffix(r.URL.Path, "/result") {
		suffix = "/result"
	} else if strings.HasSuffix(r.URL.Path, "/trace") {
		suffix = "/trace"
	}

	if hash, ok := strings.CutPrefix(id, "cache."); ok && r.Method == http.MethodGet {
		f.serveFromCache(w, r, hash, suffix)
		return
	}

	idx, local, ok := f.splitID(id)
	if !ok {
		frontError(w, http.StatusNotFound, "front: unknown job id %q", id)
		return
	}
	member := f.ring.Members()[idx]

	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") && suffix == "" {
		f.streamThrough(w, r, member, local)
		return
	}

	resp, err := f.proxy(r.Context(), r.Method, member, "/api/v1/jobs/"+local+suffix, nil)
	if err != nil {
		f.cProxyErrs.Add(1)
		f.mem.MarkDown(member)
		frontError(w, http.StatusBadGateway, "front: replica r%d unreachable: %v", idx, err)
		return
	}
	if suffix != "" {
		// Result and trace payloads pass through byte-identical.
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	f.relayStatus(w, resp, idx)
}

// serveFromCache answers status/result reads for "cache.<hash>" IDs by
// re-consulting the hash owners.
func (f *Front) serveFromCache(w http.ResponseWriter, r *http.Request, hash, suffix string) {
	payload, ok := f.lookupCache(r.Context(), hash)
	if !ok {
		frontError(w, http.StatusNotFound, "front: no cached result for %s", hash)
		return
	}
	if suffix == "/result" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(payload)
		return
	}
	if suffix == "/trace" {
		frontError(w, http.StatusNotFound, "front: cache-served jobs have no trace")
		return
	}
	f.writeCacheStatus(w, hash, jobspec.Spec{}, payload)
}

// lookupCache walks the hash's owner sequence until a replica holds
// the result.
func (f *Front) lookupCache(ctx context.Context, hash string) ([]byte, bool) {
	for _, t := range f.targets(hash) {
		cctx, cancel := context.WithTimeout(ctx, f.cfg.CacheTimeout)
		payload, err := f.fetch(cctx, t, hash)
		cancel()
		if err == nil {
			return payload, true
		}
	}
	return nil, false
}

// handleCache serves the fleet-level peer-cache route: the front
// consults the hash owners on the caller's behalf.
func (f *Front) handleCache(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	payload, ok := f.lookupCache(r.Context(), hash)
	if !ok {
		frontError(w, http.StatusNotFound, "front: no cached result for %s", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// streamThrough proxies an SSE status stream verbatim.
func (f *Front) streamThrough(w http.ResponseWriter, r *http.Request, member, local string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, member+"/api/v1/jobs/"+local, nil)
	if err != nil {
		frontError(w, http.StatusInternalServerError, "front: %v", err)
		return
	}
	req.Header.Set("Accept", r.Header.Get("Accept"))
	resp, err := f.hc.Do(req)
	if err != nil {
		f.cProxyErrs.Add(1)
		frontError(w, http.StatusBadGateway, "front: replica unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	fl, canFlush := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if canFlush {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleList merges every alive replica's job list, prefixing each
// job's ID with its replica index. Replicas are visited in canonical
// order, so the merged list is deterministic given the per-replica
// lists.
func (f *Front) handleList(w http.ResponseWriter, r *http.Request) {
	merged := make([]json.RawMessage, 0, 64)
	for idx, member := range f.ring.Members() {
		if !f.mem.IsAlive(member) {
			continue
		}
		resp, err := f.proxy(r.Context(), http.MethodGet, member, "/api/v1/jobs", nil)
		if err != nil {
			f.mem.MarkDown(member)
			continue
		}
		var list []json.RawMessage
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&list)
		drainResponse(resp)
		if err != nil {
			f.cProxyErrs.Add(1)
			continue
		}
		for _, raw := range list {
			merged = append(merged, rewriteID(raw, idx))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(merged)
}

// handleMetrics serves the front's own counters in Prometheus text
// format, refreshing the inflight gauge first.
func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter(MetricFrontInflight).Set(f.inflight.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = f.reg.WritePrometheus(w)
}

// MetricFrontInflight gauges submissions currently being admitted or
// proxied (refreshed on every /metrics scrape).
const MetricFrontInflight = "front/inflight"

// handleHealthz reports front liveness.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
