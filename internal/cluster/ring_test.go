package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic proves the coordination-free agreement claim:
// rings built independently from permuted (and duplicated) seed lists
// assign every key identically.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a", ""}, 0)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member canonicalization differs: %v vs %v", a.Members(), b.Members())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %q: owner %q vs %q", key, ao, bo)
		}
		if as, bs := a.Sequence(key), b.Sequence(key); !reflect.DeepEqual(as, bs) {
			t.Fatalf("key %q: sequence %v vs %v", key, as, bs)
		}
	}
}

// TestRingSequence checks the failover order: starts at the owner and
// visits every member exactly once.
func TestRingSequence(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != r.Len() {
			t.Fatalf("key %q: sequence %v does not cover all %d members", key, seq, r.Len())
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("key %q: sequence starts at %q, owner is %q", key, seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("key %q: member %q appears twice in %v", key, m, seq)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance spot-checks that vnodes keep the ownership split
// reasonable: with 3 members no member owns less than 10% of keys.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range r.Members() {
		if counts[m] < n/10 {
			t.Errorf("member %q owns only %d/%d keys — ring badly unbalanced: %v", m, counts[m], n, counts)
		}
	}
}

// TestRingConsistency checks the property consistent hashing exists
// for: growing the fleet remaps only the keys the new member takes —
// every other key keeps its owner.
func TestRingConsistency(t *testing.T) {
	small := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	big := NewRing([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		so, bo := small.Owner(key), big.Owner(key)
		if so == bo {
			continue
		}
		if bo != "http://d" {
			t.Fatalf("key %q moved %q -> %q, not to the new member", key, so, bo)
		}
		moved++
	}
	if moved == 0 || moved > n/2 {
		t.Errorf("adding one member to 3 moved %d/%d keys, want roughly n/4", moved, n)
	}
}

// TestRingEmpty checks the degenerate cases stay total.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if r.Len() != 0 || r.Owner("x") != "" || r.Sequence("x") != nil {
		t.Errorf("empty ring: Len=%d Owner=%q Sequence=%v", r.Len(), r.Owner("x"), r.Sequence("x"))
	}
}
