package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chimera/internal/jobspec"
)

// submitBody marshals one spec the way a client posts it.
func submitBody(t *testing.T, spec jobspec.Spec) []byte {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrontShedsPastMaxInflight(t *testing.T) {
	f := NewFront(FrontConfig{Replicas: []string{"http://a"}, MaxInflight: 2})
	f.inflight.Add(2) // two admissions permanently in flight
	req := httptest.NewRequest(http.MethodPost, "/api/v1/jobs",
		bytes.NewReader(submitBody(t, jobspec.Solo("SAD"))))
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := f.reg.Counter(MetricFrontShed).Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// The cap releases: with inflight back under it, the submission is
	// admitted (and fails downstream only because no replica exists).
	f.inflight.Add(-2)
	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/v1/jobs",
		bytes.NewReader(submitBody(t, jobspec.Solo("SAD")))))
	if rr.Code == http.StatusTooManyRequests {
		t.Fatalf("still shedding after inflight drained")
	}
}

func TestSplitID(t *testing.T) {
	f := NewFront(FrontConfig{Replicas: []string{"http://a", "http://b"}})
	cases := []struct {
		id    string
		idx   int
		local string
		ok    bool
	}{
		{"r0.j7", 0, "j7", true},
		{"r1.j7", 1, "j7", true},
		{"r2.j7", 0, "", false}, // out of range
		{"j7", 0, "", false},
		{"r.j7", 0, "", false},
		{"r0.", 0, "", false},
		{"rx.j7", 0, "", false},
	}
	for _, c := range cases {
		idx, local, ok := f.splitID(c.id)
		if idx != c.idx || local != c.local || ok != c.ok {
			t.Errorf("splitID(%q) = (%d, %q, %v), want (%d, %q, %v)",
				c.id, idx, local, ok, c.idx, c.local, c.ok)
		}
	}
}

func TestRewriteID(t *testing.T) {
	out := rewriteID([]byte(`{"id":"j3","state":"done"}`), 2)
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("rewritten body unparseable: %v", err)
	}
	if st.ID != "r2.j3" || st.State != "done" {
		t.Errorf("rewritten status = %+v", st)
	}
	// Non-JSON bodies pass through untouched.
	if got := rewriteID([]byte("not json"), 0); string(got) != "not json" {
		t.Errorf("non-JSON body mutated: %q", got)
	}
}

// TestFrontFailover proves POST-commit safety of the ring walk: the
// hash owner answers 503 (provably not admitted), the front marks it
// down and the next replica in the sequence gets the job.
func TestFrontFailover(t *testing.T) {
	accepted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/api/v1/jobs/j1")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
	}))
	defer accepted.Close()
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer refusing.Close()

	f := NewFront(FrontConfig{Replicas: []string{accepted.URL, refusing.URL}})

	// Find a spec whose hash the refusing replica owns, so the submit
	// must fail over.
	var spec jobspec.Spec
	for seed := uint64(1); ; seed++ {
		spec = jobspec.Solo("SAD").WithSeed(seed)
		spec.Normalize()
		if f.ring.Owner(spec.Hash()) == refusing.URL {
			break
		}
	}

	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/v1/jobs",
		bytes.NewReader(submitBody(t, spec))))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body)
	}
	wantIdx := f.replicaIndex(accepted.URL)
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("r%d.j1", wantIdx); st.ID != want {
		t.Errorf("job id = %q, want %q", st.ID, want)
	}
	if loc := rr.Header().Get("Location"); loc != fmt.Sprintf("/api/v1/jobs/r%d.j1", wantIdx) {
		t.Errorf("Location = %q", loc)
	}
	if got := f.reg.Counter(MetricFrontFailovers).Value(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if f.mem.IsAlive(refusing.URL) {
		t.Error("refusing replica not marked down")
	}
}

// TestFrontCacheHitSubmit proves a wait=1 duplicate is served straight
// from the owner's peer cache without proxying the job anywhere.
func TestFrontCacheHitSubmit(t *testing.T) {
	proxied := 0
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proxied++
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer replica.Close()

	payload := []byte(`{"summary":{"throughput":1}}`)
	f := NewFront(FrontConfig{
		Replicas: []string{replica.URL},
		Fetch: func(_ context.Context, member, hash string) ([]byte, error) {
			return payload, nil
		},
	})

	spec := jobspec.Solo("SAD").WithSeed(42)
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/api/v1/jobs?wait=1",
		bytes.NewReader(submitBody(t, spec))))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body)
	}
	var st struct {
		ID      string          `json:"id"`
		State   string          `json:"state"`
		Deduped bool            `json:"deduped"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	norm := spec
	norm.Normalize()
	if st.ID != "cache."+norm.Hash() || st.State != "done" || !st.Deduped {
		t.Errorf("cache-served status = %+v", st)
	}
	if !bytes.Equal(st.Result, payload) {
		t.Errorf("result %s not byte-identical to cached payload %s", st.Result, payload)
	}
	if proxied != 0 {
		t.Errorf("replica was proxied %d times for a cache hit", proxied)
	}
	if got := f.reg.Counter(MetricFrontCacheHits).Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// The synthetic ID stays resolvable: status and result reads answer
	// from the cache too.
	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/v1/jobs/"+st.ID+"/result", nil))
	if rr.Code != http.StatusOK || !bytes.Equal(rr.Body.Bytes(), payload) {
		t.Errorf("cache id result read: %d %s", rr.Code, rr.Body)
	}
	if strings.Contains(rr.Body.String(), "error") {
		t.Errorf("unexpected error body: %s", rr.Body)
	}
}
