package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestMembershipMarks(t *testing.T) {
	m := NewMembership([]string{"http://b", "http://a", "http://a"})
	if got, want := m.Members(), []string{"http://a", "http://b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	if !m.IsAlive("http://a") || !m.IsAlive("http://b") {
		t.Fatal("fresh view must presume every member alive")
	}
	if m.IsAlive("http://nope") {
		t.Fatal("unknown members must not be alive")
	}

	m.MarkDown("http://a")
	if m.IsAlive("http://a") {
		t.Fatal("MarkDown did not stick")
	}
	if got, want := m.Alive(), []string{"http://b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Alive() = %v, want %v", got, want)
	}
	m.MarkUp("http://a")
	if !m.IsAlive("http://a") {
		t.Fatal("MarkUp did not revive")
	}
}

func TestMembershipProbeOnce(t *testing.T) {
	m := NewMembership([]string{"http://a", "http://b", "http://c"})
	dead := map[string]bool{"http://b": true}
	probe := func(_ context.Context, member string) error {
		if dead[member] {
			return errors.New("down")
		}
		return nil
	}
	if got := m.ProbeOnce(context.Background(), probe); got != 1 {
		t.Fatalf("ProbeOnce reported %d down, want 1", got)
	}
	if got, want := m.Alive(), []string{"http://a", "http://c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Alive() after probe = %v, want %v", got, want)
	}

	// Recovery on the next round, including a member MarkDown'd on
	// demand in between.
	m.MarkDown("http://c")
	dead = map[string]bool{}
	if got := m.ProbeOnce(context.Background(), probe); got != 0 {
		t.Fatalf("ProbeOnce reported %d down, want 0", got)
	}
	if got := m.Alive(); len(got) != 3 {
		t.Fatalf("Alive() after recovery = %v, want all 3", got)
	}
}
