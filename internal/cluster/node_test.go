package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fakeFetch builds a FetchFunc over a static member→payload table and
// records the consultation order.
func fakeFetch(table map[string][]byte, errs map[string]error, calls *[]string) FetchFunc {
	return func(_ context.Context, member, hash string) ([]byte, error) {
		*calls = append(*calls, member)
		if err := errs[member]; err != nil {
			return nil, err
		}
		if b, ok := table[member]; ok {
			return b, nil
		}
		return nil, ErrCacheMiss
	}
}

func testNode(self string, fetch FetchFunc, maxPeers int) *Node {
	return &Node{
		Self:     self,
		Ring:     NewRing([]string{"http://a", "http://b", "http://c"}, 0),
		Fetch:    fetch,
		MaxPeers: maxPeers,
	}
}

func TestNodeLookupHit(t *testing.T) {
	var calls []string
	hash := "deadbeef00000001"
	n := testNode("http://self-not-on-ring",
		fakeFetch(map[string][]byte{
			"http://a": []byte(`{"a":1}`),
			"http://b": []byte(`{"b":1}`),
			"http://c": []byte(`{"c":1}`),
		}, nil, &calls), 1)
	payload, from, err := n.Lookup(context.Background(), hash)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	owner := n.Ring.Owner(hash)
	if from != owner {
		t.Errorf("served by %q, want owner %q", from, owner)
	}
	if string(payload) != string(map[string][]byte{
		"http://a": []byte(`{"a":1}`),
		"http://b": []byte(`{"b":1}`),
		"http://c": []byte(`{"c":1}`),
	}[owner]) {
		t.Errorf("payload %q not the owner's", payload)
	}
	if len(calls) != 1 {
		t.Errorf("consulted %v, want exactly the owner", calls)
	}
}

func TestNodeLookupSkipsSelf(t *testing.T) {
	var calls []string
	hash := "deadbeef00000001"
	owner := NewRing([]string{"http://a", "http://b", "http://c"}, 0).Owner(hash)
	// Self is the owner: Lookup must go to the next member instead.
	n := testNode(owner, fakeFetch(nil, nil, &calls), 1)
	if _, _, err := n.Lookup(context.Background(), hash); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("Lookup err = %v, want ErrCacheMiss", err)
	}
	if len(calls) != 1 || calls[0] == owner {
		t.Errorf("consulted %v; must skip self %q and ask exactly one peer", calls, owner)
	}
}

func TestNodeLookupMaxPeers(t *testing.T) {
	var calls []string
	n := testNode("", fakeFetch(nil, nil, &calls), 2)
	if _, _, err := n.Lookup(context.Background(), "somehash"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("err = %v, want ErrCacheMiss", err)
	}
	if len(calls) != 2 {
		t.Errorf("consulted %v, want exactly MaxPeers=2", calls)
	}
}

func TestNodeLookupTransportError(t *testing.T) {
	var calls []string
	boom := errors.New("boom")
	hash := "deadbeef00000001"
	owner := NewRing([]string{"http://a", "http://b", "http://c"}, 0).Owner(hash)
	n := testNode("", fakeFetch(nil, map[string]error{owner: boom}, &calls), 1)
	if _, _, err := n.Lookup(context.Background(), hash); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the transport error", err)
	}
}

func TestNodeLookupNil(t *testing.T) {
	var n *Node
	if _, _, err := n.Lookup(context.Background(), "x"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("nil node err = %v, want ErrCacheMiss", err)
	}
}

func TestHTTPFetchProtocol(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case CachePathPrefix + "have":
			fmt.Fprint(w, `{"ok":true}`)
		case CachePathPrefix + "miss":
			http.NotFound(w, r)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	fetch := NewHTTPFetch(ts.Client())
	ctx := context.Background()
	if b, err := fetch(ctx, ts.URL, "have"); err != nil || string(b) != `{"ok":true}` {
		t.Errorf("have: %q, %v", b, err)
	}
	if _, err := fetch(ctx, ts.URL, "miss"); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("miss: err = %v, want ErrCacheMiss", err)
	}
	if _, err := fetch(ctx, ts.URL, "boom"); err == nil || errors.Is(err, ErrCacheMiss) {
		t.Errorf("500: err = %v, want a status error", err)
	}
}
