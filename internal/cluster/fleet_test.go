// Fleet integration test: several in-process chimerad replicas plus a
// Front, proving the tentpole contract end to end — a fleet of N
// approximates one shared memoizing cache (summed simjob executions ==
// distinct spec hashes), results stay byte-identical to a single-node
// run, and a job computed on replica A is served from A's cache to a
// request routed via replica B without a recompute.
//
// It lives in the external cluster_test package: internal/server
// imports internal/cluster, so only an external test can close the
// loop over both.
package cluster_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/cluster"
	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

// lateHandler is an http.Handler whose target is bound after the
// listener URL is known — replicas need every peer's URL (their own
// included) before server.New can build their cluster node.
type lateHandler struct {
	h atomic.Pointer[http.Handler]
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := l.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// fleet is an in-process replica fleet plus its front.
type fleet struct {
	urls    []string
	servers []*server.Server
	front   *cluster.Front
	frontTS *httptest.Server
}

// bootFleet starts n peer-cache-armed replicas and a front over them.
// It takes testing.TB so the fleet benchmarks boot the same topology.
func bootFleet(t testing.TB, n int) *fleet {
	t.Helper()
	f := &fleet{}
	late := make([]*lateHandler, n)
	for i := 0; i < n; i++ {
		late[i] = &lateHandler{}
		ts := httptest.NewServer(late[i])
		t.Cleanup(ts.Close)
		f.urls = append(f.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{
			Workers: 2,
			Cluster: &cluster.Node{
				Self:  f.urls[i],
				Ring:  cluster.NewRing(f.urls, 0),
				Fetch: cluster.NewHTTPFetch(&http.Client{Timeout: 2 * time.Second}),
			},
		})
		f.servers = append(f.servers, srv)
		h := srv.Handler()
		late[i].h.Store(&h)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("replica shutdown: %v", err)
			}
		})
	}
	f.front = cluster.NewFront(cluster.FrontConfig{Replicas: f.urls})
	f.frontTS = httptest.NewServer(f.front.Handler())
	t.Cleanup(f.frontTS.Close)
	return f
}

// executed sums actual simulation executions across the fleet.
func (f *fleet) executed() int64 {
	var total int64
	for _, s := range f.servers {
		total += s.Pool().Cache().Stats().JobsRun
	}
	return total
}

// fleetSpecs builds the distinct specs the tests drive.
func fleetSpecs(n int) []jobspec.Spec {
	specs := make([]jobspec.Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, jobspec.Solo("SAD").WithWindowUs(200).WithSeed(uint64(1000+i)))
	}
	return specs
}

// TestFleetSharedCache drives distinct specs plus duplicates through
// the front and checks the one-shared-cache arithmetic exactly.
func TestFleetSharedCache(t *testing.T) {
	f := bootFleet(t, 3)
	ctx := context.Background()
	specs := fleetSpecs(6)

	// Single-node baseline for byte-identical comparison.
	baseline := server.New(server.Config{Workers: 2})
	baseTS := httptest.NewServer(baseline.Handler())
	t.Cleanup(baseTS.Close)
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = baseline.Shutdown(sctx)
	})
	baseC := client.New(baseTS.URL)
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		st, err := baseC.SubmitWait(ctx, spec)
		if err != nil || st.State != server.StateDone {
			t.Fatalf("baseline spec %d: %v %v", i, st.State, err)
		}
		want[i] = append([]byte(nil), st.Result...)
	}

	c := client.New(f.frontTS.URL)
	for pass := 0; pass < 2; pass++ {
		for i, spec := range specs {
			st, err := c.SubmitWait(ctx, spec)
			if err != nil {
				t.Fatalf("pass %d spec %d: %v", pass, i, err)
			}
			if st.State != server.StateDone {
				t.Fatalf("pass %d spec %d finished %s: %s", pass, i, st.State, st.Error)
			}
			if !bytes.Equal(st.Result, want[i]) {
				t.Errorf("pass %d spec %d: result differs from single-node baseline\nfleet: %s\nsolo:  %s",
					pass, i, st.Result, want[i])
			}
			if pass > 0 && !st.Deduped {
				t.Errorf("pass %d spec %d not served as duplicate", pass, i)
			}
		}
	}

	if got := f.executed(); got != int64(len(specs)) {
		t.Errorf("fleet executed %d simulations for %d submissions, want exactly %d (one per distinct spec)",
			got, 2*len(specs), len(specs))
	}
	if got := f.front.Registry().Counter(cluster.MetricFrontRouted).Value(); got != int64(len(specs)) {
		t.Errorf("front routed %d, want %d", got, len(specs))
	}
	if got := f.front.Registry().Counter(cluster.MetricFrontCacheHits).Value(); got != int64(len(specs)) {
		t.Errorf("front cache hits %d, want %d", got, len(specs))
	}
}

// TestFleetCrossReplicaServe is the acceptance scenario verbatim: a job
// computed on replica A (the hash owner) is served from A's cache to a
// request submitted via replica B, with no recompute anywhere.
func TestFleetCrossReplicaServe(t *testing.T) {
	f := bootFleet(t, 3)
	ctx := context.Background()

	// Pick a spec and identify owner A and a distinct replica B.
	spec := jobspec.Solo("SAD").WithWindowUs(200).WithSeed(4242)
	norm := spec
	norm.Normalize()
	ring := cluster.NewRing(f.urls, 0)
	ownerURL := ring.Owner(norm.Hash())
	a, b := -1, -1
	for i, u := range f.urls {
		if u == ownerURL {
			a = i
		} else if b < 0 {
			b = i
		}
	}
	if a < 0 || b < 0 {
		t.Fatalf("could not split owner/non-owner among %v (owner %s)", f.urls, ownerURL)
	}

	// Compute on A.
	stA, err := client.New(f.urls[a]).SubmitWait(ctx, spec)
	if err != nil || stA.State != server.StateDone {
		t.Fatalf("owner submit: %v %v", stA.State, err)
	}
	if got := f.servers[a].Pool().Cache().Stats().JobsRun; got != 1 {
		t.Fatalf("owner executed %d, want 1", got)
	}

	// Submit the same spec via B: served from A's peer cache.
	stB, err := client.New(f.urls[b]).SubmitWait(ctx, spec)
	if err != nil || stB.State != server.StateDone {
		t.Fatalf("non-owner submit: %v %v", stB.State, err)
	}
	if !bytes.Equal(stA.Result, stB.Result) {
		t.Errorf("peer-served result differs:\nA: %s\nB: %s", stA.Result, stB.Result)
	}
	if got := f.servers[b].Pool().Cache().Stats().JobsRun; got != 0 {
		t.Errorf("replica B executed %d simulations, want 0 (peer cache must serve)", got)
	}
	if got := f.servers[b].Registry().Counter(server.MetricPeerHits).Value(); got != 1 {
		t.Errorf("replica B peer_hits = %d, want 1", got)
	}
	if got := f.servers[a].Registry().Counter(server.MetricPeerServed).Value(); got != 1 {
		t.Errorf("replica A peer_served = %d, want 1", got)
	}
}

// TestFleetOwnerDeath checks the rerouting contract: when the owner
// dies, the ring reroutes and the job recomputes on a survivor —
// correctness never depends on the cache.
func TestFleetOwnerDeath(t *testing.T) {
	f := bootFleet(t, 3)
	ctx := context.Background()

	spec := jobspec.Solo("SAD").WithWindowUs(200).WithSeed(777)
	norm := spec
	norm.Normalize()
	ownerURL := f.front.Ring().Owner(norm.Hash())

	// Compute once through the front (lands on the owner).
	c := client.New(f.frontTS.URL)
	st1, err := c.SubmitWait(ctx, spec)
	if err != nil || st1.State != server.StateDone {
		t.Fatalf("first submit: %v %v", st1.State, err)
	}

	// Kill the owner: its listener refuses, the front must fail over and
	// a survivor recomputes (its own peer lookup now errors — ignored).
	f.front.Membership().MarkDown(ownerURL)
	before := f.executed()
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil || st2.State != server.StateDone {
		t.Fatalf("post-death submit: %v %v", st2.State, err)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Errorf("recomputed result differs:\n%s\nvs\n%s", st1.Result, st2.Result)
	}
	// Served either from the dead owner's still-reachable cache (we only
	// marked it down at the front) or recomputed; both are correct. What
	// must not happen is an error or a miscount.
	if after := f.executed(); after < before {
		t.Errorf("executed count went backwards: %d -> %d", before, after)
	}
}

// TestFleetListMerge checks the front's merged job list carries
// replica-prefixed IDs that resolve back through the front.
func TestFleetListMerge(t *testing.T) {
	f := bootFleet(t, 3)
	ctx := context.Background()
	c := client.New(f.frontTS.URL)

	specs := fleetSpecs(4)
	for i, spec := range specs {
		if st, err := c.SubmitWait(ctx, spec); err != nil || st.State != server.StateDone {
			t.Fatalf("spec %d: %v %v", i, st.State, err)
		}
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != len(specs) {
		t.Fatalf("merged list has %d jobs, want %d", len(list), len(specs))
	}
	for _, st := range list {
		got, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Errorf("status %s via front: %v", st.ID, err)
			continue
		}
		if got.ID != st.ID {
			t.Errorf("status id %q, want %q", got.ID, st.ID)
		}
	}
}
