package chimera

import (
	"io"

	"chimera/internal/experiments"
	"chimera/internal/metrics"
	"chimera/internal/simjob"
	"chimera/internal/tablefmt"
	"chimera/internal/workloads"
)

// Experiment harness --------------------------------------------------------

// Scale sets the simulated durations of the evaluation runs.
type Scale = experiments.Scale

// DefaultScale is the scale the recorded EXPERIMENTS.md results use;
// QuickScale is a fast smoke-test preset.
func DefaultScale() Scale { return experiments.DefaultScale() }

// QuickScale returns the fast preset for tests and demos.
func QuickScale() Scale { return experiments.QuickScale() }

// ResultTable is a printable experiment result.
type ResultTable = tablefmt.Table

// ExperimentNames lists the regenerable exhibits (table1, table2, fig2,
// fig3, fig6-fig11, allpairs, ablation) in the paper's order.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(name string, s Scale) ([]*ResultTable, error) {
	return experiments.Run(name, s)
}

// RunAllExperiments regenerates every exhibit in order.
func RunAllExperiments(s Scale) ([]*ResultTable, error) {
	return experiments.RunAll(s)
}

// RenderTables writes tables one after another to w.
func RenderTables(w io.Writer, tables []*ResultTable) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderTablesJSON writes tables as a JSON array for plotting pipelines.
func RenderTablesJSON(w io.Writer, tables []*ResultTable) error {
	return tablefmt.WriteJSON(w, tables)
}

// Job scheduling -------------------------------------------------------------

// JobStats is a snapshot of simulation-job scheduling activity: batch
// tasks queued/running/done, simulations executed, cache hits and
// cumulative simulation wall time. Set Scale.Parallelism to bound how
// many simulations run at once (0 = GOMAXPROCS); results are identical
// at any value.
type JobStats = simjob.Stats

// GlobalJobStats aggregates job activity across every experiment run in
// the process — what drives chimerasim's -progress ticker.
func GlobalJobStats() JobStats { return simjob.GlobalStats() }

// Scenario runners -----------------------------------------------------------

// ScenarioRunner executes the §4.1 periodic-task and §4.4 pair scenarios
// with memoized stand-alone baselines.
type ScenarioRunner = workloads.Runner

// PeriodicResult and PairResult are the per-scenario outcomes.
type (
	PeriodicResult = workloads.PeriodicResult
	PairResult     = workloads.PairResult
)

// NewScenarioRunner builds a runner with the given simulation window,
// preemption latency constraint and seed.
func NewScenarioRunner(window, constraint Cycles, seed uint64) (*ScenarioRunner, error) {
	return workloads.NewRunner(window, constraint, seed)
}

// StandardPolicies returns the §4 contenders: Switch, Drain, Flush,
// Chimera.
func StandardPolicies() []Policy { return workloads.StandardPolicies() }

// Recording ------------------------------------------------------------------

// RecordOptions configures one fully-traced contention run; Recording
// is its outcome (the complete event stream plus headline counts).
type (
	RecordOptions = workloads.RecordOptions
	Recording     = workloads.Recording
)

// RecordScenario executes one §4.1 contention scenario with full
// tracing (never cached) — the source of `chimerasim -trace` artifacts.
func RecordScenario(opts RecordOptions) (*Recording, error) {
	return workloads.Record(opts)
}

// Metrics --------------------------------------------------------------------

// MetricsRegistry is a named collection of counters and histograms with
// a deterministic text dump; install via SimOptions.Metrics or
// RecordOptions.Metrics. MetricsHistogram and MetricsCounter are its
// entry types.
type (
	MetricsRegistry  = metrics.Registry
	MetricsHistogram = metrics.Histogram
	MetricsCounter   = metrics.Counter
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }
