// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), regenerating the exhibit and logging it, plus
// microbenchmarks of the decision core itself (Algorithm 1's cost is
// claimed negligible in §3.3 — BenchmarkSelect measures it).
//
// The exhibit benchmarks run at the quick scale so `go test -bench=.`
// finishes in minutes; `go run ./cmd/chimerasim all` regenerates
// everything at the recorded EXPERIMENTS.md scale.
package chimera_test

import (
	"context"
	"strings"
	"testing"

	"chimera"
	"chimera/internal/jobspec"
	"chimera/internal/simjob"
	"chimera/internal/workloads"
)

// benchScale is the fidelity used by the exhibit benchmarks.
func benchScale() chimera.Scale {
	return chimera.QuickScale()
}

// runExhibit regenerates one exhibit per iteration and logs it once.
func runExhibit(b *testing.B, name string) {
	b.Helper()
	var out string
	for i := 0; i < b.N; i++ {
		tables, err := chimera.RunExperiment(name, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		if err := chimera.RenderTables(&sb, tables); err != nil {
			b.Fatal(err)
		}
		out = sb.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable1(b *testing.B)   { runExhibit(b, "table1") }
func BenchmarkTable2(b *testing.B)   { runExhibit(b, "table2") }
func BenchmarkFig2(b *testing.B)     { runExhibit(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { runExhibit(b, "fig3") }
func BenchmarkFig6(b *testing.B)     { runExhibit(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { runExhibit(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { runExhibit(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { runExhibit(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { runExhibit(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { runExhibit(b, "fig11") }
func BenchmarkAllPairs(b *testing.B) { runExhibit(b, "allpairs") }

// Ablation benches (DESIGN.md §5): the combined table, plus the three
// focused variants for -bench filtering.
func BenchmarkAblations(b *testing.B) { runExhibit(b, "ablation") }

func benchAblationVariant(b *testing.B, policy chimera.Policy, warm bool) {
	b.Helper()
	var violations float64
	for i := 0; i < b.N; i++ {
		runner, err := chimera.NewScenarioRunner(
			benchScale().PeriodicWindow, chimera.Microseconds(15), benchScale().Seed)
		if err != nil {
			b.Fatal(err)
		}
		runner.Warm = warm
		total, n := 0.0, 0
		for _, bench := range chimera.Catalog().BenchmarkNames() {
			res, err := runner.RunPeriodic(bench, policy)
			if err != nil {
				b.Fatal(err)
			}
			total += res.ViolationRate
			n++
		}
		violations = total / float64(n)
	}
	b.ReportMetric(violations*100, "violations%")
}

func BenchmarkAblationNoConservative(b *testing.B) {
	benchAblationVariant(b, chimera.ChimeraPolicy{OptimisticCold: true}, false)
}

func BenchmarkAblationPerSMOnly(b *testing.B) {
	benchAblationVariant(b, chimera.ChimeraPolicy{PerSMUniform: true}, true)
}

func BenchmarkAblationCycleEstimator(b *testing.B) {
	benchAblationVariant(b, chimera.ChimeraPolicy{CycleBased: true}, true)
}

// BenchmarkSelect measures Algorithm 1 itself on a full-width request
// (30 SMs × 8 blocks, the worst case of the Table 1 configuration) —
// the §3.3 claim is that selection cost is negligible against the
// preemption latency.
func BenchmarkSelect(b *testing.B) {
	cfg := chimera.DefaultConfig()
	params := chimera.Catalog().MustKernel("SAD.0").Params
	est := chimera.KernelEstimate{
		AvgInstsPerTB:    float64(params.InstsPerTB),
		HasInsts:         true,
		AvgCPI:           params.BaseCPI,
		HasCPI:           true,
		SMIPC:            params.SMIPC(),
		HasIPC:           true,
		SMSwitchCycles:   params.SwitchCycles(cfg),
		TBSwitchCycles:   params.TBSwitchCycles(cfg),
		StrictIdempotent: params.StrictIdempotent,
	}
	in := chimera.Input{Est: est}
	for s := 0; s < cfg.NumSMs; s++ {
		sm := chimera.SMSnapshot{SM: chimera.SMID(s)}
		for t := 0; t < cfg.MaxTBsPerSM; t++ {
			executed := int64((s*cfg.MaxTBsPerSM + t) * 997 % int(params.InstsPerTB))
			sm.TBs = append(sm.TBs, chimera.TBSnapshot{
				Index:     s*cfg.MaxTBsPerSM + t,
				Executed:  executed,
				RunCycles: chimera.Cycles(float64(executed) * params.BaseCPI),
			})
		}
		in.SMs = append(in.SMs, sm)
	}
	req := chimera.Request{
		ConstraintCycles: float64(chimera.Microseconds(15)),
		NumPreempts:      cfg.NumSMs / 2,
		Opts:             chimera.EstimateOptions{Relaxed: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := chimera.Select(req, in)
		if len(sel.Plans) == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkAnalyze measures the compiler-side idempotence analysis over
// the whole 27-kernel catalog.
func BenchmarkAnalyze(b *testing.B) {
	specs := chimera.Catalog().Kernels()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := chimera.AnalyzeKernel(s.Program); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulation measures raw simulator throughput: one millisecond
// of a saturated 30-SM device per iteration. The custom ns/sim-cycle
// metric is the wall-clock cost of one simulated device cycle — the
// headline number BENCH_core.json tracks across PRs.
func BenchmarkSimulation(b *testing.B) {
	cat := chimera.Catalog()
	spec := cat.MustKernel("BP.0")
	window := chimera.Microseconds(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := chimera.NewSimulation(chimera.SimOptions{Seed: uint64(i), WarmStats: true})
		sim.AddProcess(chimera.ProcessSpec{
			Name:     "bench",
			Launches: []chimera.LaunchSpec{{Params: spec.Params, Grid: spec.Params.GridSize}},
			Loop:     true,
		})
		sim.Run(window)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(window)), "ns/sim-cycle")
}

// BenchmarkEngineHot measures the engine's hot loop under multitasking
// pressure: a saturated 30-SM device running a looping background
// kernel while a half-device real-time task preempts it every 100µs —
// the workload mix that exercises the event queue's same-cycle bursts,
// the preemption planner, TB recycling and the rebalance path together.
// The ns/sim-cycle metric is the number BENCH_engine.json tracks.
func BenchmarkEngineHot(b *testing.B) {
	cat := chimera.Catalog()
	spec := cat.MustKernel("BP.0")
	window := chimera.Microseconds(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := chimera.NewSimulation(chimera.SimOptions{Seed: uint64(i), WarmStats: true})
		sim.AddProcess(chimera.ProcessSpec{
			Name:     "bench",
			Launches: []chimera.LaunchSpec{{Params: spec.Params, Grid: spec.Params.GridSize}},
			Loop:     true,
		})
		sim.AddPeriodicTask(chimera.PeriodicSpec{
			Period: chimera.Microseconds(100),
			Exec:   chimera.Microseconds(40),
			SMs:    15,
			Label:  "RT",
		})
		sim.Run(window)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(window)), "ns/sim-cycle")
}

// TestEngineHotAllocBudget pins the allocation count of the hot-loop
// scenario. The pooling work (eventq arenas, TB free lists, scratch
// buffers, batched emission) brought a 1ms saturated window from ~144k
// allocations down to ~2k; the budget has ~2× headroom so it catches a
// reintroduced per-event or per-block allocation (which costs tens of
// thousands) without flaking on incidental drift.
func TestEngineHotAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run is ~100ms")
	}
	cat := chimera.Catalog()
	spec := cat.MustKernel("BP.0")
	window := chimera.Microseconds(1000)
	allocs := testing.AllocsPerRun(3, func() {
		sim := chimera.NewSimulation(chimera.SimOptions{Seed: 1, WarmStats: true})
		sim.AddProcess(chimera.ProcessSpec{
			Name:     "bench",
			Launches: []chimera.LaunchSpec{{Params: spec.Params, Grid: spec.Params.GridSize}},
			Loop:     true,
		})
		sim.AddPeriodicTask(chimera.PeriodicSpec{
			Period: chimera.Microseconds(100),
			Exec:   chimera.Microseconds(40),
			SMs:    15,
			Label:  "RT",
		})
		sim.Run(window)
	})
	const budget = 6000
	if allocs > budget {
		t.Errorf("hot-loop scenario allocates %.0f objects per 1ms window, budget %d", allocs, budget)
	}
}

// BenchmarkSimjobPool measures the spec-addressed job layer end to end:
// one jobspec.Spec through the workloads Executor against a warm result
// cache per iteration — normalize, validate, policy parse, identity
// derivation and the memoized lookup, everything a cached exhibit or
// replayed request pays besides the simulation itself. The custom
// jobs/sec metric is the dedup-path throughput ceiling.
func BenchmarkSimjobPool(b *testing.B) {
	r, err := chimera.NewScenarioRunner(
		chimera.Microseconds(200), chimera.Microseconds(15), 1)
	if err != nil {
		b.Fatal(err)
	}
	r = r.UsePool(simjob.NewPool(0, simjob.NewCache()))
	ex := workloads.NewExecutor(r)
	spec := jobspec.Periodic("SAD", "").WithWindowUs(200)
	ctx := context.Background()
	if _, _, err := ex.Run(ctx, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, executed, err := ex.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if executed {
			b.Fatal("warm spec re-simulated")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}

// Extension exhibits.
func BenchmarkContention(b *testing.B)  { runExhibit(b, "contention") }
func BenchmarkScaling(b *testing.B)     { runExhibit(b, "scaling") }
func BenchmarkEstAccuracy(b *testing.B) { runExhibit(b, "estacc") }

// BenchmarkWarpLevel measures the warp-level SM model over the whole
// catalog (sampled), the grounding layer for the block-level CPIs.
func BenchmarkWarpLevel(b *testing.B) {
	cfg := chimera.DefaultSMConfig()
	cfg.MaxInstsPerWarp = 2048
	specs := chimera.Catalog().Kernels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := chimera.RunWarpLevel(s.Program, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFunctionalFlush measures the functional flush-equivalence
// check on a catalog kernel (one undisturbed run plus one flushed run).
func BenchmarkFunctionalFlush(b *testing.B) {
	prog := chimera.Catalog().MustKernel("NW.0").Program
	res, err := chimera.AnalyzeKernel(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean, err := chimera.ExecuteKernel(prog, -1)
		if err != nil {
			b.Fatal(err)
		}
		flushed, err := chimera.ExecuteKernel(prog, res.FirstBreach/2)
		if err != nil {
			b.Fatal(err)
		}
		if !flushed.Equal(clean) {
			b.Fatal("flush inside the idempotent window diverged")
		}
	}
}

func BenchmarkCalibrated(b *testing.B) { runExhibit(b, "calibrated") }
func BenchmarkGPUSize(b *testing.B)    { runExhibit(b, "gpusize") }
func BenchmarkSeeds(b *testing.B)      { runExhibit(b, "seeds") }
