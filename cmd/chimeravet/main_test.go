package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chimera/internal/lint"
)

// TestCleanPackageExitsZero runs the driver over a package known to be
// clean and expects a silent success.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", "../..", "./internal/units"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestViolationExitsOne builds a throwaway module seeded with a
// wallclock violation under a simulation import path and expects exit
// status 1 with the finding on stdout.
func TestViolationExitsOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module chimera\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "engine", "bad.go"), `package engine

import "time"

// Boot records the host boot time, which a simulation package must not.
func Boot() time.Time { return time.Now() }
`)
	var out, errb bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "time.Now reads the host clock") {
		t.Errorf("stdout missing wallclock finding:\n%s", out.String())
	}
}

// TestSelftestDetectsSeededCorpus proves the negative gate: every
// analyzer must fire on its fixture corpus.
func TestSelftestDetectsSeededCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest", "-dir", "../.."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, a := range []string{"detmap", "wallclock", "ctxflow", "schemaconst", "locksafe", "golifecycle", "hotalloc"} {
		if !strings.Contains(out.String(), a+": ") {
			t.Errorf("selftest output missing analyzer %s:\n%s", a, out.String())
		}
	}
}

// TestJSONOutput seeds the same wallclock violation and checks the
// -json wire shape: one JSON object per line with the file, line, col,
// analyzer and message fields CI annotation renderers key on.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module chimera\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "engine", "bad.go"), `package engine

import "time"

// Boot records the host boot time, which a simulation package must not.
func Boot() time.Time { return time.Now() }
`)
	var out, errb bytes.Buffer
	code := run([]string{"-dir", dir, "-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSON lines, want 1:\n%s", len(lines), out.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, lines[0])
	}
	if filepath.Base(f.File) != "bad.go" {
		t.Errorf("file = %q, want base bad.go", f.File)
	}
	if f.Line != 6 {
		t.Errorf("line = %d, want 6", f.Line)
	}
	if f.Col <= 0 {
		t.Errorf("col = %d, want > 0", f.Col)
	}
	if f.Analyzer != "wallclock" {
		t.Errorf("analyzer = %q, want wallclock", f.Analyzer)
	}
	if !strings.Contains(f.Message, "time.Now reads the host clock") {
		t.Errorf("message = %q, want the wallclock finding text", f.Message)
	}
}

// TestWriteJSONEncoding checks the encoder directly: stable field
// names, one object per line, exact round-trip of every field.
func TestWriteJSONEncoding(t *testing.T) {
	diags := []lint.Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "locksafe", Message: "m1"},
		{Pos: token.Position{Filename: "b.go", Line: 12, Column: 1}, Analyzer: "hotalloc", Message: `quote " and \ backslash`},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	for i, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		d := diags[i]
		if f.File != d.Pos.Filename || f.Line != d.Pos.Line || f.Col != d.Pos.Column ||
			f.Analyzer != d.Analyzer || f.Message != d.Message {
			t.Errorf("line %d round-trip mismatch: got %+v, want %+v", i, f, d)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
