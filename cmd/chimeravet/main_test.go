package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanPackageExitsZero runs the driver over a package known to be
// clean and expects a silent success.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", "../..", "./internal/units"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestViolationExitsOne builds a throwaway module seeded with a
// wallclock violation under a simulation import path and expects exit
// status 1 with the finding on stdout.
func TestViolationExitsOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module chimera\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "engine", "bad.go"), `package engine

import "time"

// Boot records the host boot time, which a simulation package must not.
func Boot() time.Time { return time.Now() }
`)
	var out, errb bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "time.Now reads the host clock") {
		t.Errorf("stdout missing wallclock finding:\n%s", out.String())
	}
}

// TestSelftestDetectsSeededCorpus proves the negative gate: every
// analyzer must fire on its fixture corpus.
func TestSelftestDetectsSeededCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-selftest", "-dir", "../.."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, a := range []string{"detmap", "wallclock", "ctxflow", "schemaconst"} {
		if !strings.Contains(out.String(), a+": ") {
			t.Errorf("selftest output missing analyzer %s:\n%s", a, out.String())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
