// Command chimeravet runs the project's custom static-analysis suite:
// seven analyzers that prove the simulator's core invariants at build
// time instead of hunting their violations in flaky test output.
//
// Usage:
//
//	chimeravet [-dir d] [-json] [packages...]  # analyze packages (default ./...)
//	chimeravet -selftest [-dir d]              # prove the fixture corpus still fails
//
// The analyzers (see internal/lint and docs/static-analysis.md):
//
//	detmap      — no nondeterministic map iteration in determinism-critical packages
//	wallclock   — no host-clock reads or global math/rand in simulation packages
//	ctxflow     — exported blocking APIs take a context; no Background/TODO laundering
//	schemaconst — trace event kinds and metric names are named constants
//	locksafe    — no blocking operation while a sync mutex is held; every Lock is
//	              released on every path, with defer recognized
//	golifecycle — every go statement in long-lived packages has a provable shutdown
//	              path (ctx/done-channel, WaitGroup join, or a reasoned allow)
//	hotalloc    — no always-heap-allocating construct in //chimera:hot functions
//
// Findings print as file:line:col: message [analyzer] and set exit
// status 1; with -json each finding is instead one JSON object per
// line ({"file","line","col","analyzer","message"}) for CI annotation
// renderers. A genuine exception is silenced in source with
// //chimera:allow <analyzer> <reason>.
//
// -selftest runs each analyzer over its internal/lint/testdata fixture
// package and fails unless every analyzer still produces findings there
// and every fixture expectation is met. make lint and CI run it right
// after the clean-tree pass: a lint gate that cannot fail is no gate,
// so the corpus of seeded violations proves the gate still bites.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"chimera/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the driver and returns the process exit status:
// 0 clean, 1 findings (or selftest failure), 2 usage or load error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chimeravet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	selftest := fs.Bool("selftest", false, "run the analyzers over the seeded-violation fixture corpus and fail unless every analyzer fires")
	dir := fs.String("dir", ".", "directory to resolve packages (and the fixture corpus) from")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (file, line, col, analyzer, message) instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: chimeravet [-dir d] [-json] [packages...]\n       chimeravet -selftest [-dir d]\n\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *selftest {
		return runSelftest(*dir, stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "chimeravet: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "chimeravet: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "chimeravet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "chimeravet: %d findings\n", n)
		return 1
	}
	return 0
}

// jsonFinding is the -json wire shape: one object per line, stable
// field names for CI annotation renderers.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders diagnostics as newline-delimited JSON.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		f := jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// fixtureCases maps each analyzer to its seeded-violation fixture
// package. The fixture paths double as scope probes: each corpus is
// loaded under an import path its analyzer considers in scope.
var fixtureCases = []struct {
	analyzer *lint.Analyzer
	subdir   string
	pkgPath  string
}{
	{lint.DetMap, "detmap/critical", "chimera/internal/engine/lintfixture"},
	{lint.WallClock, "wallclock/sim", "chimera/internal/engine/lintfixture"},
	{lint.CtxFlow, "ctxflow/server", "chimera/internal/simjob/lintfixture"},
	{lint.SchemaConst, "schemaconst/obs", "chimera/internal/engine/lintfixture"},
	{lint.LockSafe, "locksafe/sync", "chimera/internal/server/lintfixture"},
	{lint.GoLifecycle, "golifecycle/longlived", "chimera/internal/cluster/lintfixture"},
	{lint.HotAlloc, "hotalloc/hot", "chimera/internal/engine/lintfixture"},
}

// runSelftest proves the gate still bites: every analyzer must produce
// at least one finding on its fixture corpus, and the corpus
// expectations (// want comments) must all be met.
func runSelftest(dir string, stdout, stderr io.Writer) int {
	root := filepath.Join(dir, "internal", "lint", "testdata")
	bad := 0
	for _, c := range fixtureCases {
		fixDir := filepath.Join(root, c.subdir)
		mismatches, found, err := lint.CheckFixture(fixDir, c.pkgPath, []*lint.Analyzer{c.analyzer})
		if err != nil {
			fmt.Fprintf(stderr, "chimeravet -selftest: %s: %v\n", c.analyzer.Name, err)
			return 2
		}
		for _, m := range mismatches {
			fmt.Fprintf(stderr, "chimeravet -selftest: %s: %s\n", c.analyzer.Name, m)
			bad++
		}
		if found == 0 {
			fmt.Fprintf(stderr, "chimeravet -selftest: %s produced no findings on %s — the gate cannot fail\n",
				c.analyzer.Name, fixDir)
			bad++
		} else {
			fmt.Fprintf(stdout, "selftest: %s: %d seeded findings detected\n", c.analyzer.Name, found)
		}
	}
	if bad > 0 {
		return 1
	}
	fmt.Fprintln(stdout, "selftest: all analyzers still detect their seeded violations")
	return 0
}
