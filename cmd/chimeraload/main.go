// Command chimeraload is a load generator for chimerad with both
// closed-loop and open-loop arrival processes.
//
// Closed loop (-arrival closed, the default): -c concurrent clients
// each submit a job, wait for it to finish, and immediately submit the
// next, until -n jobs have completed — the classic saturation probe.
//
// Open loop (-arrival poisson | bursty): jobs arrive on a schedule
// that does not depend on the server's speed, which is how production
// traffic behaves. Inter-arrival gaps are drawn from the repository's
// deterministic RNG (internal/rng), so the same -seed and -rate always
// produce the same arrival schedule:
//
//   - poisson: independent exponential gaps at -rate jobs/sec.
//   - bursty:  a modulated Poisson process alternating 20-job bursts at
//     5× -rate with 20-job lulls at ⅓ -rate — same mean load, spiky
//     shape.
//
// With -record FILE, the generator appends every job's terminal
// outcome to a versioned JSONL workload trace (jobspec.TraceRecord,
// docs/jobs.md) whose arrival offsets are the scheduled (deterministic)
// arrival times — the exact format chimerad -record emits and
// chimerareplay consumes, so a synthetic open-loop campaign can be
// re-driven bit-for-bit later.
//
// After the run it prints a latency table (p50/p95/p99, mean, max) and
// a throughput summary.
//
// Usage:
//
//	chimeraload -addr HOST:PORT [-addr HOST:PORT ...] [flags]
//
// Flags:
//
//	-addr HOST:PORT  chimerad or chimerafront address; repeat the flag
//	                 to spread jobs round-robin over several targets
//	                 (direct replicas, or several fronts) — the report
//	                 then includes a per-target latency table
//	                 (at least one required)
//	-n N             total jobs to run (default 200)
//	-c N             closed loop: concurrent clients (default 8)
//	-arrival A       arrival process: closed, poisson or bursty
//	                 (default closed)
//	-rate R          open loop: mean arrival rate in jobs/sec
//	                 (default 50)
//	-seed N          open loop: arrival-process seed (default 1)
//	-record FILE     append a JSONL workload trace of every job
//	-kind K          scenario kind: solo, periodic or pair (default solo)
//	-bench B         benchmark (default SAD)
//	-bench-b B       second benchmark for pair jobs (default MUM)
//	-window-us N     simulated µs per job (default 100)
//	-policy P        preemption policy for periodic/pair jobs
//	                 ("" = server default)
//	-policies P,...  policy shootout: run the identical campaign once per
//	                 policy (same arrival schedule and seeds) and print a
//	                 per-policy comparison of p99 latency, shed rate and
//	                 deadline-miss rate
//	-deadline-ms N   per-job SLO deadline; the server sheds hopeless jobs
//	                 with 429 and fails jobs that overrun (default 0 = none)
//	-estimator E     runtime estimator: oracle or online ("" = oracle)
//	-distinct        vary each job's seed so every job simulates
//	                 (default true; -distinct=false measures the cache)
//
// Every job uses seed base+i when -distinct, so the server's result
// cache cannot collapse the run; with -distinct=false all jobs share
// one identity and the run measures dedup latency instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/jobspec"
	"chimera/internal/metrics"
	"chimera/internal/rng"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

// addrList collects repeated -addr flags.
type addrList []string

// String renders the accumulated list (flag.Value contract).
func (a *addrList) String() string { return strings.Join(*a, ",") }

// Set appends one -addr occurrence (flag.Value contract).
func (a *addrList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty address")
	}
	*a = append(*a, v)
	return nil
}

// baseURL accepts both the documented HOST:PORT form and a full
// http(s):// base URL (the form chimerad/chimerafront print and the
// fleet docs use for replica lists).
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// options carries the flag-settable knobs into the run functions.
type options struct {
	addrs      addrList
	n          int
	conc       int
	arrival    string
	rate       float64
	seed       uint64
	record     string
	kind       string
	bench      string
	benchB     string
	windowUs   float64
	policy     string
	policies   string
	deadlineMs int64
	estimator  string
	distinct   bool
}

func main() {
	var o options
	flag.Var(&o.addrs, "addr", "chimerad or chimerafront address (host:port or http://base URL); repeatable for round-robin fan-out")
	flag.IntVar(&o.n, "n", 200, "total jobs to run")
	flag.IntVar(&o.conc, "c", 8, "closed loop: concurrent clients")
	flag.StringVar(&o.arrival, "arrival", "closed", "arrival process: closed, poisson or bursty")
	flag.Float64Var(&o.rate, "rate", 50, "open loop: mean arrival rate in jobs/sec")
	flag.Uint64Var(&o.seed, "seed", 1, "open loop: arrival-process seed")
	flag.StringVar(&o.record, "record", "", "append a JSONL workload trace to FILE")
	flag.StringVar(&o.kind, "kind", server.KindSolo, "scenario kind (solo, periodic, pair)")
	flag.StringVar(&o.bench, "bench", "SAD", "benchmark")
	flag.StringVar(&o.benchB, "bench-b", "MUM", "second benchmark for pair jobs")
	flag.Float64Var(&o.windowUs, "window-us", 100, "simulated µs per job")
	flag.StringVar(&o.policy, "policy", "", "preemption policy for periodic/pair jobs (empty = server default)")
	flag.StringVar(&o.policies, "policies", "", "comma-separated policies: run the campaign once per policy and compare")
	flag.Int64Var(&o.deadlineMs, "deadline-ms", 0, "per-job SLO deadline in milliseconds (0 = none)")
	flag.StringVar(&o.estimator, "estimator", "", "runtime estimator: oracle or online (empty = oracle)")
	flag.BoolVar(&o.distinct, "distinct", true, "vary each job's seed so every job simulates")
	flag.Parse()

	if len(o.addrs) == 0 {
		fmt.Fprintln(os.Stderr, "chimeraload: at least one -addr is required")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "chimeraload: %v\n", err)
		os.Exit(1)
	}
}

// specFor builds job i's spec via the jobspec builders — the same
// construction path every production caller uses.
func (o *options) specFor(i int64) jobspec.Spec {
	var spec jobspec.Spec
	switch o.kind {
	case server.KindPeriodic:
		spec = jobspec.Periodic(o.bench, o.policy)
	case server.KindPair:
		spec = jobspec.Pair(o.bench, o.benchB, o.policy)
	default:
		spec = jobspec.Solo(o.bench)
		spec.Kind = o.kind // surface an unknown -kind as a server-side 400
	}
	spec = spec.WithWindowUs(o.windowUs).WithSeed(1)
	if o.deadlineMs > 0 {
		spec = spec.WithDeadlineMs(o.deadlineMs)
	}
	if o.estimator != "" {
		spec = spec.WithEstimator(o.estimator)
	}
	if o.distinct {
		spec = spec.WithSeed(uint64(i + 1))
	}
	return spec
}

// arrivalGaps precomputes the n deterministic inter-arrival gaps of the
// chosen open-loop process.
func arrivalGaps(process string, n int, rate float64, seed uint64) ([]time.Duration, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("open-loop arrival needs -rate > 0")
	}
	src := rng.New(seed)
	// exponential draws one exponentially-distributed gap at rate r.
	exponential := func(r float64) time.Duration {
		u := src.Float64()
		return time.Duration(-math.Log(1-u) / r * float64(time.Second))
	}
	gaps := make([]time.Duration, n)
	switch process {
	case "poisson":
		for i := range gaps {
			gaps[i] = exponential(rate)
		}
	case "bursty":
		// Alternate 20-job bursts at 5× rate with 20-job lulls at ⅓
		// rate: spikier than Poisson at a comparable mean load.
		const phase = 20
		for i := range gaps {
			r := rate * 5
			if (i/phase)%2 == 1 {
				r = rate / 3
			}
			gaps[i] = exponential(r)
		}
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want closed, poisson or bursty)", process)
	}
	return gaps, nil
}

// loadStats aggregates one run's outcomes across worker goroutines,
// both fleet-wide and split per -addr target.
type loadStats struct {
	hist      *metrics.Histogram
	perTarget []*metrics.Histogram
	deduped   atomic.Int64
	failed    atomic.Int64
	// shed counts submissions the server refused as hopeless against
	// their deadline (429 server/shed_hopeless); missed counts admitted
	// jobs that overran their deadline and failed. Both are expected SLO
	// outcomes, reported separately and never treated as run errors.
	shed   atomic.Int64
	missed atomic.Int64
	errMu  sync.Mutex
	err    error
}

func newLoadStats(targets int) *loadStats {
	// Service latency in milliseconds through the repo's own
	// fixed-bucket histogram (the same estimator behind the engine's
	// latency exhibits).
	s := &loadStats{
		hist: metrics.NewHistogram("load/latency_ms", "ms", metrics.ExpBuckets(0.25, 1.5, 32)),
	}
	for i := 0; i < targets; i++ {
		s.perTarget = append(s.perTarget,
			metrics.NewHistogram(fmt.Sprintf("load/latency_ms_t%d", i), "ms", metrics.ExpBuckets(0.25, 1.5, 32)))
	}
	return s
}

// note records one job outcome (thread-safe). target is the index into
// the -addr list the job was submitted to.
func (s *loadStats) note(i int64, target int, st server.JobStatus, lat time.Duration, err error) {
	switch {
	case isShed(err):
		s.shed.Add(1)
	case err != nil:
		s.failed.Add(1)
		s.setErr(fmt.Errorf("job %d: %w", i, err))
	case st.State == server.StateFailed && strings.Contains(st.Error, "deadline"):
		s.missed.Add(1)
	case st.State == server.StateDone:
		if st.Deduped {
			s.deduped.Add(1)
		}
		ms := float64(lat) / float64(time.Millisecond)
		s.hist.Observe(ms)
		s.perTarget[target].Observe(ms)
	default:
		s.failed.Add(1)
		s.setErr(fmt.Errorf("job %d finished %s: %s", i, st.State, st.Error))
	}
}

func (s *loadStats) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// isShed recognizes the server's shed-on-hopeless rejection: a 429
// whose message carries the distinct shed marker (queue-full 429s say
// "queue full" and are retried by the client instead).
func isShed(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) &&
		apiErr.StatusCode == http.StatusTooManyRequests &&
		strings.Contains(apiErr.Message, "shed")
}

// run drives the selected loop — once, or once per -policies entry —
// and prints the report.
func run(o options) error {
	if o.conc < 1 {
		o.conc = 1
	}
	if o.conc > o.n {
		o.conc = o.n
	}
	clients := make([]*client.Client, len(o.addrs))
	for i, a := range o.addrs {
		// With a deadline, submissions are single-attempt: the client's
		// default 429 retry loop would re-offer a shed job against the
		// same hopeless deadline (the server deliberately sends no
		// Retry-After) and mask the shed as a slow success.
		if o.deadlineMs > 0 {
			clients[i] = client.New(baseURL(a), client.WithMaxAttempts(1))
		} else {
			clients[i] = client.New(baseURL(a))
		}
	}

	var rec *jobspec.TraceWriter
	if o.record != "" {
		f, err := os.OpenFile(o.record, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open record file: %w", err)
		}
		defer f.Close()
		rec = jobspec.NewTraceWriter(f)
	}

	if o.policies == "" {
		stats, elapsed, err := campaign(o, clients, rec)
		if err != nil {
			return err
		}
		return report(o, stats, elapsed, rec)
	}
	return shootout(o, clients, rec)
}

// campaign runs one full arrival campaign with the current options and
// returns its aggregated stats.
func campaign(o options, clients []*client.Client, rec *jobspec.TraceWriter) (*loadStats, time.Duration, error) {
	stats := newLoadStats(len(clients))
	start := time.Now()
	var err error
	if o.arrival == "closed" {
		err = runClosed(o, clients, stats, rec, start)
	} else {
		err = runOpen(o, clients, stats, rec)
	}
	if err != nil {
		return nil, 0, err
	}
	return stats, time.Since(start), nil
}

// shootout runs the identical campaign once per -policies entry — same
// arrival process, seeds and deadlines, so the only variable is the
// preemption policy — and prints the per-policy comparison of tail
// latency, shed rate and deadline-miss rate.
func shootout(o options, clients []*client.Client, rec *jobspec.TraceWriter) error {
	policies := strings.Split(o.policies, ",")
	fmt.Printf("chimeraload: policy shootout: %d jobs/policy (%s %s, %gµs window, %s arrivals, deadline %dms)\n",
		o.n, o.kind, o.bench, o.windowUs, o.arrival, o.deadlineMs)
	fmt.Println("  policy    done   shed   missed  failed  miss-rate  p50(ms)    p99(ms)")
	var firstErr error
	for _, p := range policies {
		po := o
		po.policy = strings.TrimSpace(p)
		stats, _, err := campaign(po, clients, rec)
		if err != nil {
			return err
		}
		shed, missed := stats.shed.Load(), stats.missed.Load()
		missRate := float64(shed+missed) / float64(o.n)
		fmt.Printf("  %-8s %6d %6d %8d %7d %9.1f%% %-10.3f %-10.3f\n",
			po.policy, stats.hist.Count(), shed, missed, stats.failed.Load(),
			100*missRate, stats.hist.Quantile(0.50), stats.hist.Quantile(0.99))
		if firstErr == nil && stats.err != nil {
			firstErr = fmt.Errorf("policy %s: %w", po.policy, stats.err)
		}
	}
	if rec != nil {
		fmt.Printf("  recorded %d trace records to %s\n", rec.Count(), o.record)
	}
	return firstErr
}

// report prints the single-campaign summary.
func report(o options, stats *loadStats, elapsed time.Duration, rec *jobspec.TraceWriter) error {
	completed := stats.hist.Count()
	fmt.Printf("chimeraload: %d jobs (%s %s, %gµs window, %s arrivals) in %v\n",
		o.n, o.kind, o.bench, o.windowUs, o.arrival, elapsed.Round(time.Millisecond))
	fmt.Printf("  completed: %d   failed: %d   deduped: %d   throughput: %.1f jobs/s\n",
		completed, stats.failed.Load(), stats.deduped.Load(), float64(completed)/elapsed.Seconds())
	if o.deadlineMs > 0 {
		fmt.Printf("  shed: %d   deadline-missed: %d\n", stats.shed.Load(), stats.missed.Load())
	}
	if completed > 0 {
		fmt.Println("  latency(ms)  p50        p95        p99        mean       max")
		fmt.Printf("               %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
			stats.hist.Quantile(0.50), stats.hist.Quantile(0.95), stats.hist.Quantile(0.99),
			stats.hist.Mean(), stats.hist.Max())
	}
	if len(o.addrs) > 1 {
		fmt.Println("  per-target latency(ms)           p50        p95        p99        jobs")
		for t, a := range o.addrs {
			h := stats.perTarget[t]
			fmt.Printf("    %-28s %-10.3f %-10.3f %-10.3f %d\n",
				a, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count())
		}
	}
	if rec != nil {
		fmt.Printf("  recorded %d trace records to %s\n", rec.Count(), o.record)
	}
	if stats.err != nil {
		return stats.err
	}
	if completed == 0 && stats.shed.Load() == 0 && stats.missed.Load() == 0 {
		return fmt.Errorf("no job completed")
	}
	return nil
}

// record appends one terminal outcome to the workload trace.
func record(rec *jobspec.TraceWriter, i int64, arrival time.Duration, spec jobspec.Spec, st server.JobStatus, err error) {
	if rec == nil {
		return
	}
	spec.Normalize()
	tr := jobspec.TraceRecord{
		Seq:       i + 1,
		ArrivalMs: float64(arrival) / float64(time.Millisecond),
		Spec:      spec,
	}
	switch {
	case err != nil:
		tr.Outcome = string(server.StateFailed)
		tr.Error = err.Error()
	default:
		tr.Outcome = string(st.State)
		tr.Deduped = st.Deduped
		tr.Error = st.Error
	}
	if werr := rec.Append(tr); werr != nil {
		fmt.Fprintf(os.Stderr, "chimeraload: trace write: %v\n", werr)
	}
}

// runClosed is the saturation probe: conc clients, each re-submitting
// as soon as its previous job finishes. Job i goes to target i mod
// len(clients), so the round-robin split is deterministic.
func runClosed(o options, clients []*client.Client, stats *loadStats, rec *jobspec.TraceWriter, start time.Time) error {
	ctx := context.Background()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.n) {
					return
				}
				target := int(i) % len(clients)
				spec := o.specFor(i)
				arrival := time.Since(start)
				t0 := time.Now()
				st, err := clients[target].SubmitWait(ctx, spec)
				stats.note(i, target, st, time.Since(t0), err)
				record(rec, i, arrival, spec, st, err)
			}
		}()
	}
	wg.Wait()
	return nil
}

// runOpen fires jobs on the precomputed deterministic arrival schedule
// regardless of how fast the server keeps up, and waits for the
// stragglers at the end.
func runOpen(o options, clients []*client.Client, stats *loadStats, rec *jobspec.TraceWriter) error {
	gaps, err := arrivalGaps(o.arrival, o.n, o.rate, o.seed)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	var arrival time.Duration
	for i := 0; i < o.n; i++ {
		arrival += gaps[i]
		time.Sleep(gaps[i])
		wg.Add(1)
		go func(i int64, arrival time.Duration) {
			defer wg.Done()
			target := int(i) % len(clients)
			spec := o.specFor(i)
			t0 := time.Now()
			st, err := clients[target].SubmitWait(ctx, spec)
			stats.note(i, target, st, time.Since(t0), err)
			record(rec, i, arrival, spec, st, err)
		}(int64(i), arrival)
	}
	wg.Wait()
	return nil
}
