// Command chimeraload is a closed-loop load generator for chimerad: -c
// concurrent clients each submit a job, wait for it to finish, and
// immediately submit the next, until -n jobs have completed. It then
// prints a latency table (p50/p95/p99, mean, max) and a throughput
// summary.
//
// Usage:
//
//	chimeraload -addr HOST:PORT [flags]
//
// Flags:
//
//	-addr HOST:PORT  chimerad address (required)
//	-n N             total jobs to run (default 200)
//	-c N             concurrent closed-loop clients (default 8)
//	-kind K          scenario kind: solo, periodic or pair (default solo)
//	-bench B         benchmark (default SAD)
//	-bench-b B       second benchmark for pair jobs (default MUM)
//	-window-us N     simulated µs per job (default 100)
//	-distinct        vary each job's seed so every job simulates
//	                 (default true; -distinct=false measures the cache)
//
// Every job uses seed base+i when -distinct, so the server's result
// cache cannot collapse the run; with -distinct=false all jobs share
// one identity and the run measures dedup latency instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/metrics"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	addr := flag.String("addr", "", "chimerad address (host:port, required)")
	n := flag.Int("n", 200, "total jobs to run")
	conc := flag.Int("c", 8, "concurrent closed-loop clients")
	kind := flag.String("kind", server.KindSolo, "scenario kind (solo, periodic, pair)")
	bench := flag.String("bench", "SAD", "benchmark")
	benchB := flag.String("bench-b", "MUM", "second benchmark for pair jobs")
	windowUs := flag.Float64("window-us", 100, "simulated µs per job")
	distinct := flag.Bool("distinct", true, "vary each job's seed so every job simulates")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "chimeraload: -addr is required")
		os.Exit(2)
	}
	if err := run(*addr, *n, *conc, *kind, *bench, *benchB, *windowUs, *distinct); err != nil {
		fmt.Fprintf(os.Stderr, "chimeraload: %v\n", err)
		os.Exit(1)
	}
}

// run drives the closed loop and prints the report.
func run(addr string, n, conc int, kind, bench, benchB string, windowUs float64, distinct bool) error {
	if conc < 1 {
		conc = 1
	}
	if conc > n {
		conc = n
	}
	c := client.New("http://" + addr)
	ctx := context.Background()

	// Service latency in milliseconds through the repo's own fixed-bucket
	// histogram (the same estimator behind the engine's latency exhibits).
	hist := metrics.NewHistogram("load/latency_ms", "ms", metrics.ExpBuckets(0.25, 1.5, 32))
	var (
		next    atomic.Int64
		deduped atomic.Int64
		failed  atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, conc)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				spec := server.JobSpec{
					Kind:     kind,
					Bench:    bench,
					WindowUs: windowUs,
					Seed:     1,
				}
				if kind == server.KindPair {
					spec.BenchB = benchB
				}
				if distinct {
					spec.Seed = uint64(i + 1)
				}
				t0 := time.Now()
				st, err := c.SubmitWait(ctx, spec)
				if err != nil {
					errs[w] = fmt.Errorf("job %d: %w", i, err)
					failed.Add(1)
					continue
				}
				lat := time.Since(t0)
				switch st.State {
				case server.StateDone:
					if st.Deduped {
						deduped.Add(1)
					}
					hist.Observe(float64(lat) / float64(time.Millisecond))
				default:
					failed.Add(1)
					errs[w] = fmt.Errorf("job %d finished %s: %s", i, st.State, st.Error)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	completed := hist.Count()
	fmt.Printf("chimeraload: %d jobs (%s %s, %gµs window) over %d clients in %v\n",
		n, kind, bench, windowUs, conc, elapsed.Round(time.Millisecond))
	fmt.Printf("  completed: %d   failed: %d   deduped: %d   throughput: %.1f jobs/s\n",
		completed, failed.Load(), deduped.Load(), float64(completed)/elapsed.Seconds())
	if completed > 0 {
		fmt.Println("  latency(ms)  p50        p95        p99        mean       max")
		fmt.Printf("               %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f\n",
			hist.Quantile(0.50), hist.Quantile(0.95), hist.Quantile(0.99),
			hist.Mean(), hist.Max())
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if completed == 0 {
		return fmt.Errorf("no job completed")
	}
	return nil
}
