// Command chimerasim regenerates the tables and figures of the Chimera
// paper (ASPLOS 2015) from the simulator.
//
// Usage:
//
//	chimerasim [flags] <experiment>...
//	chimerasim [flags] all
//	chimerasim list
//
// Experiments: table1 table2 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11
// allpairs ablation.
//
// Flags:
//
//	-quick          use the fast, low-fidelity scale
//	-seed N         RNG seed (default 1)
//	-periodic-us N  simulated µs per periodic-task run
//	-pair-us N      simulated µs per pairwise run
//	-j N            run up to N simulations in parallel (0 = GOMAXPROCS)
//	-progress       live job/cache/ETA ticker on stderr
//	-trace FILE     record a fully-traced §4.1 contention scenario and
//	                write it as Chrome trace-event JSON (ui.perfetto.dev)
//	-trace-bench B  background benchmark of the traced scenario
//	-trace-us N     simulated µs of the traced scenario
//	-metrics        dump latency histograms and scheduler counters
//	-metrics-prom   dump the metrics registry in Prometheus text format
//	                (the same renderer as chimerad's /metrics endpoint)
//
// With -trace, -metrics or -metrics-prom the experiment list may be
// empty: the command then only records the scenario and/or dumps the
// metrics registry.
//
// Every experiment is a set of independent deterministic simulations,
// so -j changes wall-clock only: the tables are byte-identical at any
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chimera"
	"chimera/internal/viz"
)

func main() {
	quick := flag.Bool("quick", false, "use the fast, low-fidelity scale")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text tables")
	chart := flag.Bool("chart", false, "render results as terminal bar charts where possible")
	seed := flag.Uint64("seed", 1, "RNG seed")
	periodicUs := flag.Float64("periodic-us", 0, "simulated µs per periodic-task run (0 = preset)")
	pairUs := flag.Float64("pair-us", 0, "simulated µs per pairwise run (0 = preset)")
	verbose := flag.Bool("v", false, "print per-experiment timing")
	workers := flag.Int("j", 0, "max simulations in parallel (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report job progress on stderr")
	traceFile := flag.String("trace", "", "write a traced contention scenario as Chrome trace-event JSON to `file`")
	traceBench := flag.String("trace-bench", "SAD", "background benchmark of the traced scenario")
	traceUs := flag.Float64("trace-us", 5000, "simulated µs of the traced scenario")
	metricsOut := flag.Bool("metrics", false, "dump latency histograms and scheduler counters after the run")
	metricsProm := flag.Bool("metrics-prom", false, "dump the metrics registry in Prometheus text format (same renderer as chimerad /metrics)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 && *traceFile == "" && !*metricsOut && !*metricsProm {
		usage()
		os.Exit(2)
	}

	scale := chimera.DefaultScale()
	if *quick {
		scale = chimera.QuickScale()
	}
	scale.Seed = *seed
	if *periodicUs > 0 {
		scale.PeriodicWindow = chimera.Microseconds(*periodicUs)
	}
	if *pairUs > 0 {
		scale.PairWindow = chimera.Microseconds(*pairUs)
		scale.AllPairsWindow = chimera.Microseconds(*pairUs)
	}
	scale.Parallelism = *workers

	if *progress {
		stop := startProgress()
		defer stop()
	}

	var names []string
	for _, a := range args {
		switch a {
		case "list":
			fmt.Println(strings.Join(chimera.ExperimentNames(), "\n"))
			return
		case "all":
			names = chimera.ExperimentNames()
		default:
			names = append(names, a)
		}
	}

	var collected []*chimera.ResultTable
	for _, name := range names {
		start := time.Now()
		tables, err := chimera.RunExperiment(name, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimerasim: %s: %v\n", name, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			collected = append(collected, tables...)
		case *chart:
			for _, t := range tables {
				if out, ok := viz.TableChart(t, 40); ok {
					fmt.Println(out)
					continue
				}
				if err := t.Render(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "chimerasim: %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		default:
			if err := chimera.RenderTables(os.Stdout, tables); err != nil {
				fmt.Fprintf(os.Stderr, "chimerasim: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if err := chimera.RenderTablesJSON(os.Stdout, collected); err != nil {
			fmt.Fprintf(os.Stderr, "chimerasim: %v\n", err)
			os.Exit(1)
		}
	}

	var reg *chimera.MetricsRegistry
	if *metricsOut || *metricsProm {
		reg = chimera.NewMetricsRegistry()
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, *traceBench, *traceUs, *seed, reg); err != nil {
			fmt.Fprintf(os.Stderr, "chimerasim: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		chimera.GlobalJobStats().Publish(reg)
		if *metricsOut {
			fmt.Println("== Metrics ==")
			if err := reg.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "chimerasim: metrics: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsProm {
			if err := reg.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "chimerasim: metrics: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeTrace records one fully-traced §4.1 contention scenario and
// writes it in the Chrome trace-event format Perfetto opens directly.
func writeTrace(path, bench string, windowUs float64, seed uint64, reg *chimera.MetricsRegistry) error {
	rec, err := chimera.RecordScenario(chimera.RecordOptions{
		Bench:   bench,
		Window:  chimera.Microseconds(windowUs),
		Seed:    seed,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chimera.WritePerfettoTrace(f, rec.Events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %s vs RT for %gµs: %d events, %d requests, %d/%d deadlines missed -> %s (open in ui.perfetto.dev)\n",
		rec.Bench, windowUs, len(rec.Events), rec.Requests, rec.Violations, rec.Periods, path)
	return nil
}

// startProgress launches a stderr ticker reporting batch-task progress,
// cache hits and an ETA extrapolated from throughput so far. It returns
// a stop function that prints one final summary line.
func startProgress() func() {
	start := time.Now()
	line := func() string {
		st := chimera.GlobalJobStats()
		elapsed := time.Since(start)
		out := fmt.Sprintf("jobs %d/%d (running %d) | simulated %d, cache hits %d",
			st.TasksDone, st.TasksQueued, st.TasksRunning, st.JobsRun, st.CacheHits)
		if remaining := st.TasksQueued - st.TasksDone; remaining > 0 && st.TasksDone > 0 {
			eta := time.Duration(float64(elapsed) / float64(st.TasksDone) * float64(remaining))
			out += fmt.Sprintf(" | ETA %v", eta.Round(time.Second))
		}
		return out
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "[progress] %s\n", line())
			}
		}
	}()
	return func() {
		close(done)
		fmt.Fprintf(os.Stderr, "[progress] %s | total %v\n", line(), time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `chimerasim regenerates the Chimera paper's tables and figures.

usage: chimerasim [flags] <experiment>...|all|list

experiments: %s

flags:
`, strings.Join(chimera.ExperimentNames(), " "))
	flag.PrintDefaults()
}
