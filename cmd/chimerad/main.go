// Command chimerad serves the Chimera simulator over HTTP: scenario
// jobs are submitted as JSON, deduplicated through the shared result
// cache, executed on a bounded worker pool with per-job deadlines and
// priorities, and observable live via /metrics (Prometheus), SSE job
// progress and Perfetto trace export. The API is documented in
// docs/server.md.
//
// Usage:
//
//	chimerad [flags]
//
// Flags:
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8080; :0 picks a
//	                 free port, printed on stdout as "chimerad listening
//	                 on ADDR")
//	-workers N       concurrent job executors (default 2)
//	-queue N         admission queue capacity; beyond it submissions get
//	                 429 + Retry-After (default 64)
//	-cache N         LRU cap on cached simulation results (0 = unbounded)
//	-timeout D       default per-job deadline (default 60s)
//	-watchdog K      arm the engine preemption watchdog at K× a
//	                 request's estimated latency (0 = off)
//	-retry-budget N  re-execute a job up to N times when its run
//	                 panicked (default 0)
//	-record FILE     append a versioned JSONL workload trace (one
//	                 jobspec.TraceRecord per admitted job at its
//	                 terminal state; docs/jobs.md) — the input of
//	                 chimerareplay
//	-peers LIST      comma-separated base URLs of every fleet replica
//	                 (including this one); arms the cluster peer
//	                 result-cache (docs/cluster.md)
//	-self URL        this replica's own advertised base URL (required
//	                 with -peers; never consulted as a peer)
//
// Deterministic fault injection (docs/faults.md) is armed by the
// -fault-* flags; all rates are probabilities in [0,1] and a zero rate
// disables that domain. The plan's fingerprint is printed at boot so a
// replay can verify it runs the same plan:
//
//	-fault-seed N             decision seed (same seed, same faults)
//	-fault-job-panic P        simjob execution panic rate
//	-fault-panic-cap N        max injected panics per distinct job
//	                          (default 1, so retries always converge)
//	-fault-job-slowdown P     simjob execution delay rate
//	-fault-slowdown-delay D   injected execution delay (default 1ms)
//	-fault-engine-stall P     preemption-technique stall rate
//	-fault-stall-factor F     stall length, in multiples of the
//	                          request's estimated latency (default 8)
//	-fault-stall-cap N        max stalls per simulation run (0 = no cap)
//	-fault-http-error P       injected 503 rate (any method)
//	-fault-http-reset P       connection-reset rate (idempotent methods)
//	-fault-http-delay P       request latency-spike rate
//	-fault-http-delay-amount D  injected request delay (default 5ms)
//	-fault-http-cap N         max injections per HTTP fault kind
//	                          (0 = no cap)
//
// SIGINT/SIGTERM start a graceful drain: admission stops (503), queued
// and running jobs finish, then the process exits 0. A second signal —
// or a drain exceeding -drain-grace — cancels outstanding jobs first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chimera/internal/cluster"
	"chimera/internal/faults"
	"chimera/internal/server"
)

// options carries every flag-settable knob into run.
type options struct {
	addr        string
	workers     int
	queueCap    int
	cacheCap    int
	timeout     time.Duration
	drainGrace  time.Duration
	watchdogK   float64
	retryBudget int
	record      string
	peers       string
	self        string
	faults      faults.Config
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (use :0 for a random free port)")
	flag.IntVar(&o.workers, "workers", 2, "concurrent job executors")
	flag.IntVar(&o.queueCap, "queue", 64, "admission queue capacity")
	flag.IntVar(&o.cacheCap, "cache", 0, "LRU cap on cached simulation results (0 = unbounded)")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "default per-job deadline")
	flag.DurationVar(&o.drainGrace, "drain-grace", 30*time.Second, "graceful-drain budget before outstanding jobs are cancelled")
	flag.Float64Var(&o.watchdogK, "watchdog", 0, "arm the engine preemption watchdog at K× a request's estimated latency (0 = off)")
	flag.IntVar(&o.retryBudget, "retry-budget", 0, "re-execute a job up to N times when its run panicked")
	flag.StringVar(&o.record, "record", "", "append a JSONL workload trace of admitted jobs to FILE")
	flag.StringVar(&o.peers, "peers", "", "comma-separated base URLs of every fleet replica (arms the cluster peer cache)")
	flag.StringVar(&o.self, "self", "", "this replica's advertised base URL (required with -peers)")
	flag.Uint64Var(&o.faults.Seed, "fault-seed", 0, "fault-injection decision seed")
	flag.Float64Var(&o.faults.JobPanic, "fault-job-panic", 0, "simjob execution panic rate [0,1]")
	flag.IntVar(&o.faults.MaxPanicsPerJob, "fault-panic-cap", 1, "max injected panics per distinct job (0 = no cap)")
	flag.Float64Var(&o.faults.JobSlowdown, "fault-job-slowdown", 0, "simjob execution delay rate [0,1]")
	flag.DurationVar(&o.faults.SlowdownDelay, "fault-slowdown-delay", time.Millisecond, "injected execution delay")
	flag.Float64Var(&o.faults.EngineStall, "fault-engine-stall", 0, "preemption-technique stall rate [0,1]")
	flag.Float64Var(&o.faults.StallFactor, "fault-stall-factor", 8, "stall length in multiples of the request's estimated latency")
	flag.IntVar(&o.faults.MaxStallsPerRun, "fault-stall-cap", 0, "max stalls per simulation run (0 = no cap)")
	flag.Float64Var(&o.faults.HTTPError, "fault-http-error", 0, "injected 503 rate [0,1]")
	flag.Float64Var(&o.faults.HTTPReset, "fault-http-reset", 0, "connection-reset rate on idempotent requests [0,1]")
	flag.Float64Var(&o.faults.HTTPDelay, "fault-http-delay", 0, "request latency-spike rate [0,1]")
	flag.DurationVar(&o.faults.HTTPDelayAmount, "fault-http-delay-amount", 5*time.Millisecond, "injected request delay")
	flag.IntVar(&o.faults.MaxHTTPFaults, "fault-http-cap", 0, "max injections per HTTP fault kind (0 = no cap)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "chimerad: %v\n", err)
		os.Exit(1)
	}
}

// faultsArmed reports whether any injection domain has a non-zero rate.
func faultsArmed(c faults.Config) bool {
	return c.JobPanic > 0 || c.JobSlowdown > 0 || c.EngineStall > 0 ||
		c.HTTPError > 0 || c.HTTPReset > 0 || c.HTTPDelay > 0
}

// run boots the service and blocks until a shutdown signal has been
// fully drained.
func run(o options) error {
	cfg := server.Config{
		Workers:        o.workers,
		QueueCap:       o.queueCap,
		CacheCap:       o.cacheCap,
		DefaultTimeout: o.timeout,
		WatchdogK:      o.watchdogK,
		RetryBudget:    o.retryBudget,
	}
	if o.peers != "" {
		if o.self == "" {
			return fmt.Errorf("-peers requires -self (this replica's advertised base URL)")
		}
		var peers []string
		for _, p := range strings.Split(o.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		cfg.Cluster = &cluster.Node{
			Self: o.self,
			Ring: cluster.NewRing(peers, 0),
			// Peer fetches sit on the job hot path; a short transport
			// deadline on top of the server's PeerTimeout keeps a dead
			// peer from ever stalling admission.
			Fetch: cluster.NewHTTPFetch(&http.Client{Timeout: time.Second}),
		}
		fmt.Printf("chimerad cluster ring over %d replicas (self %s)\n", cfg.Cluster.Ring.Len(), o.self)
	}
	var plan *faults.Plan
	if faultsArmed(o.faults) {
		// Injected delays block real goroutines in a real daemon.
		o.faults.Sleep = time.Sleep
		plan = faults.New(o.faults)
		cfg.Faults = plan
	}
	if o.record != "" {
		f, err := os.OpenFile(o.record, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open record file: %w", err)
		}
		defer f.Close()
		cfg.Record = f
		fmt.Printf("chimerad recording to %s\n", o.record)
	}
	svc := server.New(cfg)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The load generator and the smoke test discover a :0 port from this
	// line; keep its shape stable.
	fmt.Printf("chimerad listening on %s\n", ln.Addr())

	handler := svc.Handler()
	if plan != nil {
		handler = plan.Middleware(handler)
		fmt.Printf("chimerad fault plan %s\n", plan.Fingerprint())
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "chimerad: %v: draining (second signal cancels)\n", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()

	// Stop accepting connections, then drain the job queue.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer httpCancel()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "chimerad: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "chimerad: drain cut short: %v\n", err)
	}
	if plan != nil {
		fmt.Fprintf(os.Stderr, "chimerad: injected %s\n", plan)
	}
	fmt.Println("chimerad drained")
	return nil
}
