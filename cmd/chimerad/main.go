// Command chimerad serves the Chimera simulator over HTTP: scenario
// jobs are submitted as JSON, deduplicated through the shared result
// cache, executed on a bounded worker pool with per-job deadlines and
// priorities, and observable live via /metrics (Prometheus), SSE job
// progress and Perfetto trace export. The API is documented in
// docs/server.md.
//
// Usage:
//
//	chimerad [flags]
//
// Flags:
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8080; :0 picks a
//	                 free port, printed on stdout as "chimerad listening
//	                 on ADDR")
//	-workers N       concurrent job executors (default 2)
//	-queue N         admission queue capacity; beyond it submissions get
//	                 429 + Retry-After (default 64)
//	-cache N         LRU cap on cached simulation results (0 = unbounded)
//	-timeout D       default per-job deadline (default 60s)
//
// SIGINT/SIGTERM start a graceful drain: admission stops (503), queued
// and running jobs finish, then the process exits 0. A second signal —
// or a drain exceeding -drain-grace — cancels outstanding jobs first.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chimera/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random free port)")
	workers := flag.Int("workers", 2, "concurrent job executors")
	queueCap := flag.Int("queue", 64, "admission queue capacity")
	cacheCap := flag.Int("cache", 0, "LRU cap on cached simulation results (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "graceful-drain budget before outstanding jobs are cancelled")
	flag.Parse()

	if err := run(*addr, *workers, *queueCap, *cacheCap, *timeout, *drainGrace); err != nil {
		fmt.Fprintf(os.Stderr, "chimerad: %v\n", err)
		os.Exit(1)
	}
}

// run boots the service and blocks until a shutdown signal has been
// fully drained.
func run(addr string, workers, queueCap, cacheCap int, timeout, drainGrace time.Duration) error {
	svc := server.New(server.Config{
		Workers:        workers,
		QueueCap:       queueCap,
		CacheCap:       cacheCap,
		DefaultTimeout: timeout,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The load generator and the smoke test discover a :0 port from this
	// line; keep its shape stable.
	fmt.Printf("chimerad listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "chimerad: %v: draining (second signal cancels)\n", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()

	// Stop accepting connections, then drain the job queue.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), drainGrace)
	defer httpCancel()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "chimerad: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "chimerad: drain cut short: %v\n", err)
	}
	fmt.Println("chimerad drained")
	return nil
}
