// Command benchdiff compares a freshly generated benchmark baseline
// (cmd/benchjson output) against a checked-in one and fails when any
// tracked metric regressed beyond a tolerance. It is the CI guard that
// keeps the BENCH_*.json perf trajectory honest: a PR that slows the
// hot loop or reintroduces per-event allocations fails the gate instead
// of silently shipping.
//
// Usage:
//
//	benchdiff [-tol 0.30] BASELINE.json FRESH.json [BASELINE2.json FRESH2.json ...]
//
// Files are compared pairwise. For every benchmark present in the
// baseline, the same benchmark must exist in the fresh run, and every
// metric present in both is compared:
//
//   - metrics whose unit ends in "/sec" are throughputs — higher is
//     better, a drop beyond the tolerance is a regression;
//   - every other metric (ns/op, ns/sim-cycle, B/op, allocs/op, ...)
//     is a cost — a rise beyond the tolerance is a regression.
//
// The tolerance is relative (0.30 = 30%) and deliberately loose:
// wall-clock metrics wobble across machines and noisy CI runners, and
// the gate exists to catch step changes (a 2× slowdown, a thousandfold
// allocation increase), not single-digit drift. Improvements are never
// failures — after a deliberate optimization, regenerate the baseline
// with `make bench` and commit it so the trajectory ratchets forward.
//
// Flags and environment:
//
//	-tol FRACTION       allowed relative regression (default 0.30)
//	BENCHDIFF_TOL       overrides the default when -tol is not given —
//	                    the documented knob for noisy environments
//	                    (e.g. BENCHDIFF_TOL=0.75 on shared CI runners)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the cmd/benchjson document.
type baseline struct {
	V          int     `json:"v"`
	CPU        string  `json:"cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// problem is one comparison failure.
type problem struct {
	file, bench, msg string
}

func main() {
	tol := flag.Float64("tol", defaultTol(), "allowed relative regression (0.30 = 30%)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol FRACTION] BASELINE.json FRESH.json [...]")
		os.Exit(2)
	}
	failed := false
	for i := 0; i < len(args); i += 2 {
		problems, err := diffFiles(args[i], args[i+1], *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		for _, p := range problems {
			fmt.Printf("REGRESSION %s %s: %s\n", p.file, p.bench, p.msg)
			failed = true
		}
	}
	if failed {
		fmt.Printf("benchdiff: regressions beyond %.0f%% tolerance (override with BENCHDIFF_TOL or regenerate baselines with `make bench` if intentional)\n", *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all metrics within %.0f%% of baseline\n", *tol*100)
}

// defaultTol resolves the tolerance default from BENCHDIFF_TOL.
func defaultTol() float64 {
	if s := os.Getenv("BENCHDIFF_TOL"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring invalid BENCHDIFF_TOL=%q\n", s)
	}
	return 0.30
}

// diffFiles loads one baseline/fresh pair and compares them.
func diffFiles(basePath, freshPath string, tol float64) ([]problem, error) {
	base, err := load(basePath)
	if err != nil {
		return nil, err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return nil, err
	}
	if base.CPU != "" && fresh.CPU != "" && base.CPU != fresh.CPU {
		fmt.Printf("note: %s baseline recorded on %q, fresh run on %q — wall-clock deltas reflect the machine too\n",
			basePath, base.CPU, fresh.CPU)
	}
	problems := diff(base, fresh, tol)
	for i := range problems {
		problems[i].file = basePath
	}
	return problems, nil
}

func load(path string) (baseline, error) {
	var b baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	if b.V != 1 {
		return b, fmt.Errorf("%s: unsupported baseline version %d", path, b.V)
	}
	return b, nil
}

// diff compares every baseline benchmark/metric against the fresh run
// and returns the regressions beyond tol. It also prints the per-metric
// comparison table for the log.
func diff(base, fresh baseline, tol float64) []problem {
	freshBy := make(map[string]entry, len(fresh.Benchmarks))
	for _, e := range fresh.Benchmarks {
		freshBy[e.Name] = e
	}
	var problems []problem
	for _, b := range base.Benchmarks {
		f, ok := freshBy[b.Name]
		if !ok {
			problems = append(problems, problem{bench: b.Name, msg: "benchmark missing from fresh run"})
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			if _, ok := f.Metrics[k]; ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			was, now := b.Metrics[k], f.Metrics[k]
			worse := relativeRegression(k, was, now)
			mark := ""
			if worse > tol {
				mark = "  <-- REGRESSION"
				problems = append(problems, problem{
					bench: b.Name,
					msg:   fmt.Sprintf("%s %g -> %g (%+.1f%%, tolerance %.0f%%)", k, was, now, 100*change(was, now), 100*tol),
				})
			}
			fmt.Printf("  %-14s %-14s %14g -> %-14g %+.1f%%%s\n", b.Name, k, was, now, 100*change(was, now), mark)
		}
	}
	return problems
}

// change is the signed relative change from was to now.
func change(was, now float64) float64 {
	if was == 0 {
		return 0
	}
	return (now - was) / was
}

// relativeRegression maps a metric delta onto "how much worse", taking
// the metric's direction into account: "/sec" units are throughputs
// (higher is better), everything else is a cost (lower is better).
func relativeRegression(unit string, was, now float64) float64 {
	if was == 0 {
		return 0
	}
	if strings.HasSuffix(unit, "/sec") {
		return (was - now) / was
	}
	return (now - was) / was
}
