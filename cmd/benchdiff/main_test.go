package main

import "testing"

func bl(name string, metrics map[string]float64) baseline {
	return baseline{V: 1, Benchmarks: []entry{{Name: name, Metrics: metrics}}}
}

func TestDiffWithinTolerance(t *testing.T) {
	base := bl("Simulation", map[string]float64{"ns/sim-cycle": 10, "allocs/op": 1000})
	fresh := bl("Simulation", map[string]float64{"ns/sim-cycle": 12, "allocs/op": 1100})
	if p := diff(base, fresh, 0.30); len(p) != 0 {
		t.Errorf("20%% slowdown under 30%% tolerance flagged: %v", p)
	}
}

func TestDiffCostRegression(t *testing.T) {
	base := bl("Simulation", map[string]float64{"ns/sim-cycle": 10})
	fresh := bl("Simulation", map[string]float64{"ns/sim-cycle": 15})
	if p := diff(base, fresh, 0.30); len(p) != 1 {
		t.Fatalf("50%% slowdown not flagged: %v", p)
	}
}

func TestDiffThroughputDirection(t *testing.T) {
	base := bl("SimjobPool", map[string]float64{"jobs/sec": 800000})
	// Throughput UP is an improvement, never a regression.
	up := bl("SimjobPool", map[string]float64{"jobs/sec": 2000000})
	if p := diff(base, up, 0.30); len(p) != 0 {
		t.Errorf("throughput gain flagged as regression: %v", p)
	}
	down := bl("SimjobPool", map[string]float64{"jobs/sec": 400000})
	if p := diff(base, down, 0.30); len(p) != 1 {
		t.Errorf("50%% throughput drop not flagged: %v", p)
	}
}

func TestDiffMissingBenchmark(t *testing.T) {
	base := bl("EngineHot", map[string]float64{"ns/op": 1})
	fresh := baseline{V: 1}
	if p := diff(base, fresh, 0.30); len(p) != 1 {
		t.Errorf("vanished benchmark not flagged: %v", p)
	}
}

func TestDiffIgnoresNewMetricsAndBenchmarks(t *testing.T) {
	base := bl("EngineHot", map[string]float64{"ns/op": 100})
	fresh := baseline{V: 1, Benchmarks: []entry{
		{Name: "EngineHot", Metrics: map[string]float64{"ns/op": 100, "extra/op": 5}},
		{Name: "Brand New", Metrics: map[string]float64{"ns/op": 1}},
	}}
	if p := diff(base, fresh, 0.30); len(p) != 0 {
		t.Errorf("additions flagged: %v", p)
	}
}
