// Command fleetsmoke is the end-to-end fleet smoke test behind `make
// fleet-smoke`: it boots two real chimerad replicas (peer result-cache
// armed) plus a chimerafront proxy on random ports, drives a mixed
// unique/duplicate workload through the front, and verifies the fleet
// behaves as one memoizing cache — every duplicate is served without a
// recompute, so the summed simjob execution counters across the fleet
// equal the number of distinct specs, and duplicate results are
// byte-identical.
//
// A second chaos leg re-boots the fleet with one replica's HTTP fault
// plane armed (injected 503s and connection resets, deterministic per
// -fault-seed), SIGTERMs that replica while load is still flowing, and
// verifies the front fails the orphaned ring range over to the
// survivor: the full run completes with zero failed jobs, the front's
// failover counter moves, and the killed replica prints its
// deterministic fault-plan fingerprint and injection report on the way
// down.
//
// Usage:
//
//	fleetsmoke -chimerad ./chimerad -front ./chimerafront
//
// Flags:
//
//	-chimerad PATH  chimerad binary to boot (required)
//	-front PATH     chimerafront binary to boot (required)
//	-timeout D      overall smoke budget (default 3m)
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"chimera/internal/cluster"
	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	chimerad := flag.String("chimerad", "", "chimerad binary to boot (required)")
	front := flag.String("front", "", "chimerafront binary to boot (required)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall smoke budget")
	flag.Parse()
	if *chimerad == "" || *front == "" {
		fmt.Fprintln(os.Stderr, "fleetsmoke: -chimerad and -front are required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := runFleet(ctx, *chimerad, *front); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	if err := runChaos(ctx, *chimerad, *front); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsmoke: FAIL (chaos leg): %v\n", err)
		os.Exit(1)
	}
	fmt.Println("fleetsmoke: PASS")
}

// daemon is one booted process under test (chimerad or chimerafront).
type daemon struct {
	name string
	cmd  *exec.Cmd
	addr string
	// drained reports whether the process printed its drain marker
	// before stdout closed.
	drained chan bool
	// faultPlan receives the fingerprint a chimerad printed when its
	// fault plane was armed ("" when it never printed one).
	faultPlan chan string
}

// freePorts reserves n distinct free TCP ports by binding and releasing
// them. The tiny release-to-reuse window is an accepted smoke-test
// race; a clash fails loudly at boot.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// boot starts bin and waits for its "<name> listening on ADDR"
// announcement, then keeps scanning stdout for the fault-plan banner
// and the "<name> drained" marker.
func boot(ctx context.Context, name, bin string, args ...string) (*daemon, error) {
	cmd := exec.CommandContext(ctx, bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("boot %s: %w", bin, err)
	}
	d := &daemon{name: name, cmd: cmd, drained: make(chan bool, 1), faultPlan: make(chan string, 1)}

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), name+" listening on "); ok {
			d.addr = rest
			break
		}
	}
	if d.addr == "" {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("%s never announced its address", name)
	}
	go func() {
		plan, drained := "", false
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "chimerad fault plan "); ok {
				plan = rest
			}
			if strings.Contains(line, name+" drained") {
				drained = true
				break
			}
		}
		d.faultPlan <- plan
		d.drained <- drained
	}()
	return d, nil
}

// kill force-stops the daemon (cleanup for error paths).
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
}

// drain sends SIGTERM and verifies the daemon prints its drain marker
// and exits 0. It returns the fault-plan fingerprint seen on stdout.
func (d *daemon) drain(ctx context.Context) (string, error) {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return "", fmt.Errorf("signal %s: %w", d.name, err)
	}
	// The pipe must be fully read before cmd.Wait — Wait closes it and
	// would discard a still-buffered marker line.
	var plan string
	var sawDrain bool
	select {
	case plan = <-d.faultPlan:
		sawDrain = <-d.drained
	case <-ctx.Done():
		return "", fmt.Errorf("%s did not drain after SIGTERM", d.name)
	}
	if !sawDrain {
		return plan, fmt.Errorf("%s exited without draining", d.name)
	}
	exit := make(chan error, 1)
	go func() { exit <- d.cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return plan, fmt.Errorf("%s exited non-zero after SIGTERM: %w", d.name, err)
		}
	case <-ctx.Done():
		return plan, fmt.Errorf("%s did not exit after SIGTERM", d.name)
	}
	return plan, nil
}

// fleet is a booted two-replica fleet plus its front proxy.
type fleet struct {
	replicas []*daemon
	front    *daemon
	peers    []string
	ring     *cluster.Ring
}

// kill force-stops every process (cleanup for error paths).
func (f *fleet) kill() {
	for _, r := range f.replicas {
		r.kill()
	}
	if f.front != nil {
		f.front.kill()
	}
}

// bootFleet reserves ports for both replicas (every replica must know
// the full peer list at boot), boots them with the cluster peer cache
// armed, then boots the front over the same list. extra flags go to
// replica index faultIdx only (the chaos leg's victim).
func bootFleet(ctx context.Context, chimerad, front string, faultIdx int, extra ...string) (*fleet, error) {
	ports, err := freePorts(2)
	if err != nil {
		return nil, err
	}
	f := &fleet{}
	for _, p := range ports {
		f.peers = append(f.peers, fmt.Sprintf("http://127.0.0.1:%d", p))
	}
	peerList := strings.Join(f.peers, ",")
	// The front's ring is rebuilt here from the same member list and
	// default vnodes, so the smoke can predict which replica owns a
	// given spec hash.
	f.ring = cluster.NewRing(f.peers, 0)
	for i, p := range ports {
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", p),
			"-workers", "2", "-queue", "32",
			"-peers", peerList, "-self", f.peers[i],
		}
		if i == faultIdx {
			args = append(args, extra...)
		}
		r, err := boot(ctx, "chimerad", chimerad, args...)
		if err != nil {
			f.kill()
			return nil, err
		}
		f.replicas = append(f.replicas, r)
	}
	f.front, err = boot(ctx, "chimerafront", front,
		"-addr", "127.0.0.1:0", "-replicas", peerList, "-probe", "250ms")
	if err != nil {
		f.kill()
		return nil, err
	}
	return f, nil
}

// metricValue extracts one counter's value from a Prometheus text body
// (-1 when absent).
func metricValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// runFleet drives the duplicate-heavy workload through the front and
// verifies fleet-wide memoization.
func runFleet(ctx context.Context, chimerad, front string) error {
	f, err := bootFleet(ctx, chimerad, front, -1)
	if err != nil {
		return err
	}
	defer f.kill()
	fmt.Printf("fleetsmoke: replicas %s + %s, front %s\n",
		f.replicas[0].addr, f.replicas[1].addr, f.front.addr)

	c := client.New("http://" + f.front.addr)

	// 8 distinct specs, each submitted 3 times. Serial submission makes
	// the counter arithmetic exact: the first submission of a spec
	// computes on its ring owner, every later one must be served from
	// the fleet cache without touching a worker.
	const distinct, repeats = 8, 3
	results := make(map[uint64][]byte)
	for pass := 0; pass < repeats; pass++ {
		for s := 0; s < distinct; s++ {
			seed := uint64(100 + s)
			spec := jobspec.Solo("SAD").WithWindowUs(200).WithSeed(seed)
			st, err := c.SubmitWait(ctx, spec)
			if err != nil {
				return fmt.Errorf("pass %d seed %d: %w", pass, seed, err)
			}
			if st.State != server.StateDone {
				return fmt.Errorf("pass %d seed %d finished %s: %s", pass, seed, st.State, st.Error)
			}
			if len(st.Result) == 0 {
				return fmt.Errorf("pass %d seed %d done without result", pass, seed)
			}
			if pass == 0 {
				results[seed] = append([]byte(nil), st.Result...)
			} else if !bytes.Equal(results[seed], st.Result) {
				return fmt.Errorf("seed %d: duplicate result differs from original:\n%s\nvs\n%s",
					seed, results[seed], st.Result)
			}
			if pass > 0 && !st.Deduped {
				return fmt.Errorf("pass %d seed %d was not served as a duplicate", pass, seed)
			}
		}
	}
	fmt.Printf("fleetsmoke: %d submissions (%d distinct), duplicates byte-identical\n",
		distinct*repeats, distinct)

	// Fleet-wide memoization: summed across both replicas, the simjob
	// executor ran each distinct spec exactly once.
	var executed float64
	for _, base := range f.peers {
		text, err := client.New(base).Metrics(ctx)
		if err != nil {
			return fmt.Errorf("replica metrics: %w", err)
		}
		if v := metricValue(text, "chimera_simjob_jobs_run"); v > 0 {
			executed += v
		}
	}
	if executed != distinct {
		return fmt.Errorf("fleet executed %v jobs, want exactly %d (duplicates recomputed?)", executed, distinct)
	}
	fmt.Printf("fleetsmoke: fleet executed exactly %d jobs for %d submissions\n", distinct, distinct*repeats)

	// The front must have routed only the distinct specs and served
	// every later duplicate out of the replicas' peer caches itself.
	frontText, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("front metrics: %w", err)
	}
	if v := metricValue(frontText, "chimera_front_jobs_routed"); v != distinct {
		return fmt.Errorf("front routed %v jobs, want %d", v, distinct)
	}
	if v := metricValue(frontText, "chimera_front_cache_hits"); v != distinct*(repeats-1) {
		return fmt.Errorf("front served %v cache hits, want %d", v, distinct*(repeats-1))
	}
	fmt.Println("fleetsmoke: front routed/cache-hit counters exact")

	// Graceful drains: front first (it stops proxying), then replicas.
	if _, err := f.front.drain(ctx); err != nil {
		return err
	}
	for _, r := range f.replicas {
		if _, err := r.drain(ctx); err != nil {
			return err
		}
	}
	fmt.Println("fleetsmoke: graceful fleet drain ok")
	return nil
}

// seedsOwnedBy picks n job seeds whose spec hashes the ring assigns to
// member — the deterministic way to guarantee the chaos kill actually
// orphans live traffic.
func seedsOwnedBy(ring *cluster.Ring, member string, start uint64, n int) []uint64 {
	var out []uint64
	for seed := start; len(out) < n; seed++ {
		spec := jobspec.Solo("SAD").WithWindowUs(200).WithSeed(seed)
		if ring.Owner(spec.Hash()) == member {
			out = append(out, seed)
		}
	}
	return out
}

// runChaos arms replica 1's HTTP fault plane, kills it mid-run, and
// verifies the front reroutes its ring range with zero failed jobs.
func runChaos(ctx context.Context, chimerad, front string) error {
	const victim = 1
	f, err := bootFleet(ctx, chimerad, front, victim,
		"-fault-seed", "7",
		"-fault-http-error", "0.3", "-fault-http-cap", "6",
		"-fault-http-reset", "0.2",
	)
	if err != nil {
		return err
	}
	defer f.kill()
	fmt.Printf("fleetsmoke: chaos fleet up, victim %s\n", f.replicas[victim].addr)

	c := client.New("http://"+f.front.addr, client.WithMaxAttempts(8))

	// Phase 1: jobs owned by the victim, submitted while it is alive and
	// injecting 503s/resets — the front must absorb the faults.
	pre := seedsOwnedBy(f.ring, f.peers[victim], 500, 6)
	for _, seed := range pre {
		st, err := c.SubmitWait(ctx, jobspec.Solo("SAD").WithWindowUs(200).WithSeed(seed))
		if err != nil {
			return fmt.Errorf("pre-kill seed %d: %w", seed, err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("pre-kill seed %d finished %s: %s", seed, st.State, st.Error)
		}
	}
	fmt.Printf("fleetsmoke: %d jobs done through the faulted victim\n", len(pre))

	// Kill the victim mid-run: SIGTERM starts its drain (admission goes
	// 503 immediately), so in-flight work finishes but the ring range is
	// orphaned while the remaining load is still flowing.
	if err := f.replicas[victim].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM victim: %w", err)
	}

	// Phase 2: more jobs owned by the (now dying) victim. Every one must
	// fail over to the survivor and complete.
	post := seedsOwnedBy(f.ring, f.peers[victim], 900, 6)
	for _, seed := range post {
		st, err := c.SubmitWait(ctx, jobspec.Solo("SAD").WithWindowUs(200).WithSeed(seed))
		if err != nil {
			return fmt.Errorf("post-kill seed %d: %w", seed, err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("post-kill seed %d finished %s: %s", seed, st.State, st.Error)
		}
	}
	fmt.Printf("fleetsmoke: %d orphaned-range jobs failed over, zero failed\n", len(post))

	// The victim must have drained gracefully and reported its
	// deterministic fault plan.
	plan, err := f.replicas[victim].drain(ctx)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(plan, "faults:seed=7;") {
		return fmt.Errorf("victim announced fault plan %q, want seed 7", plan)
	}
	fmt.Printf("fleetsmoke: victim fault plan %s verified\n", plan)

	// The front's failover counter must show at least the first reroute;
	// after that the health view marks the victim down and later jobs
	// route straight to the survivor (which is not a failover).
	frontText, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("front metrics: %w", err)
	}
	if v := metricValue(frontText, "chimera_front_failovers"); v < 1 {
		return fmt.Errorf("front recorded %v failovers, want >= 1", v)
	}
	fmt.Println("fleetsmoke: front failover counter moved")

	if _, err := f.front.drain(ctx); err != nil {
		return err
	}
	if _, err := f.replicas[0].drain(ctx); err != nil {
		return err
	}
	fmt.Println("fleetsmoke: chaos fleet drained")
	return nil
}
