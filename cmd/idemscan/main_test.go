package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScanCatalog(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"BS.0", "MUM.0", "ST.0", "Idempotence scan"} {
		if !strings.Contains(got, want) {
			t.Errorf("catalog scan missing %q", want)
		}
	}
	if strings.Count(got, "\n") < 28 {
		t.Errorf("catalog scan too short:\n%s", got)
	}
}

func TestScanNamedKernelWithWarp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-warp", "-sample", "512", "NW.0"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "NW.0") || !strings.Contains(got, "WarpCPI") {
		t.Errorf("warp scan output wrong:\n%s", got)
	}
	if strings.Contains(got, "BS.0") {
		t.Error("unnamed kernels leaked into a filtered scan")
	}
}

func TestScanSourceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.kir")
	src := ".kernel mykernel\nld global:y[t]\nalu x2\nst global:y[t]\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-f", path, "-disasm"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"mykernel", "no", "st y[t]", "notify"} {
		if !strings.Contains(got, want) {
			t.Errorf("source scan missing %q:\n%s", want, got)
		}
	}
}

func TestScanErrors(t *testing.T) {
	if err := run([]string{"NOPE.0"}, &strings.Builder{}); err == nil {
		t.Error("unknown label accepted")
	}
	if err := run([]string{"-f", "/nonexistent.kir"}, &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.kir")
	if err := os.WriteFile(bad, []byte("frobnicate\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", bad}, &strings.Builder{}); err == nil {
		t.Error("unparseable file accepted")
	}
}
