// Command idemscan is the compiler side of Chimera as a tool: it runs
// the idempotence analysis (§2.3) and the notification-store
// instrumentation pass (§3.4) over the Table 2 kernel catalog, and
// optionally prints program listings and warp-level timing estimates.
//
// Usage:
//
//	idemscan                      # analysis summary for all 27 kernels
//	idemscan BS.0 NW.0            # only the named kernels
//	idemscan -disasm NW.0         # with instrumented program listing
//	idemscan -warp                # add warp-level CPI from the SM model
//	idemscan -f mykernel.kir      # analyze a kernel written in the
//	                              # textual IR (see docs/kir-format.md)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chimera"
	"chimera/internal/kernelir"
	"chimera/internal/smsim"
	"chimera/internal/tablefmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "idemscan: %v\n", err)
		os.Exit(1)
	}
}

// entry is one kernel to scan: a catalog entry or a parsed source file.
type entry struct {
	label string
	prog  *kernelir.Program
	res   kernelir.Result
}

// run executes the tool against an explicit output stream (testable
// main body).
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idemscan", flag.ContinueOnError)
	disasm := fs.Bool("disasm", false, "print the instrumented program listing")
	warp := fs.Bool("warp", false, "run each kernel through the warp-level SM model and report CPI")
	sample := fs.Int64("sample", 4096, "instructions per warp to sample in warp-level runs")
	var files fileList
	fs.Var(&files, "f", "kernel source file in the textual IR (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cat := chimera.Catalog()
	labels := fs.Args()
	if len(labels) == 0 && len(files) == 0 {
		labels = cat.Labels()
	}

	var entries []entry
	for _, label := range labels {
		spec, err := cat.Kernel(label)
		if err != nil {
			return err
		}
		entries = append(entries, entry{label: label, prog: spec.Program, res: spec.Analysis})
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		prog, err := kernelir.Parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		res, err := kernelir.Analyze(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		entries = append(entries, entry{label: prog.Name, prog: prog, res: res})
	}

	cols := []string{"Kernel", "Insts/warp", "Idempotent", "Breach@", "BreachOp", "Notifies"}
	if *warp {
		cols = append(cols, "WarpCPI", "Stall%")
	}
	t := tablefmt.New("Idempotence scan", cols...)

	for _, e := range entries {
		label, res := e.label, e.res
		inst := kernelir.Instrument(e.prog)
		idem, breach, op := "yes", "-", "-"
		if !res.StrictIdempotent {
			idem = "no"
			breach = tablefmt.Pct(res.BreachFraction())
			op = res.BreachOp
		}
		row := []string{
			label,
			fmt.Sprintf("%d", res.Insts),
			idem,
			breach,
			op,
			fmt.Sprintf("%d", inst.NotifyCount),
		}
		if *warp {
			cfg := smsim.DefaultConfig()
			cfg.MaxInstsPerWarp = *sample
			wres, err := smsim.Run(e.prog, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", label, err)
			}
			stall := 0.0
			if wres.Cycles > 0 {
				stall = float64(wres.IssueStallCycles) / float64(wres.Cycles)
			}
			row = append(row, tablefmt.F(wres.CPI(), 2), tablefmt.Pct(stall))
		}
		t.AddRow(row...)

		if *disasm {
			fmt.Fprintln(stdout, kernelir.DisassembleString(inst.Program))
		}
	}
	return t.Render(stdout)
}

// fileList collects repeated -f flags.
type fileList []string

// String implements flag.Value.
func (f *fileList) String() string { return fmt.Sprint([]string(*f)) }

// Set implements flag.Value by appending the path.
func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}
