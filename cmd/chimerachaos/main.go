// Command chimerachaos runs a seeded chaos campaign against an
// in-process chimerad service core and asserts the resilience
// invariants the fault plane (docs/faults.md) is supposed to uphold:
//
//   - no lost jobs: every submission reaches a terminal state and is
//     retained by the server, exactly once;
//   - no duplicate results: job IDs are unique and the result payload
//     fetched over the faulted GET path is byte-identical to the one
//     the submission returned;
//   - every response is either correct or a typed failure — with the
//     panic cap within the retry budget, every job must end done;
//   - the metrics are consistent with the plan: recovered simjob
//     panics and worker retries equal the plan's injected panic count,
//     and the engine's injected-stall counter equals the plan's stall
//     count with at least one watchdog escalation per stall.
//
// The campaign is deterministic end to end: same -seed and -jobs,
// bit-identical report (diff two runs to prove it). Exit status is 0
// when every invariant holds, 1 otherwise.
//
// Usage:
//
//	chimerachaos -seed 1 -jobs 200
//
// Flags:
//
//	-seed N          campaign seed: drives the fault plan and the
//	                 per-job simulation seeds (default 1)
//	-jobs N          number of jobs to submit (default 200)
//	-retry-budget N  server-side re-executions per panicked job
//	                 (default 3: a pair job spans three simulations,
//	                 each of which may draw one panic)
//	-watchdog K      engine watchdog multiple (default 2)
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"chimera/internal/engine"
	"chimera/internal/faults"
	"chimera/internal/jobspec"
	"chimera/internal/metrics"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed")
	jobs := flag.Int("jobs", 200, "number of jobs to submit")
	budget := flag.Int("retry-budget", 3, "server-side re-executions per panicked job")
	watchdog := flag.Float64("watchdog", 2, "engine watchdog multiple")
	flag.Parse()

	violations, err := run(*seed, *jobs, *budget, *watchdog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimerachaos: %v\n", err)
		os.Exit(1)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// campaignPlan is the fault mix every campaign runs: every domain
// active, shaped so that a bounded retry budget always converges (panic
// cap 1 per job) and a bounded client attempt count always gets through
// (HTTP faults capped per kind).
func campaignPlan(seed uint64) *faults.Plan {
	return faults.New(faults.Config{
		Seed:            seed,
		JobPanic:        0.5,
		MaxPanicsPerJob: 1,
		JobSlowdown:     0.2,
		SlowdownDelay:   100 * time.Microsecond,
		EngineStall:     0.3,
		StallFactor:     20,
		MaxStallsPerRun: 2,
		HTTPError:       0.1,
		HTTPReset:       0.1,
		HTTPDelay:       0.05,
		HTTPDelayAmount: 200 * time.Microsecond,
		MaxHTTPFaults:   40,
		Sleep:           time.Sleep,
	})
}

// specFor derives the i-th job of a campaign. The mix cycles through
// solo, periodic and pair scenarios over two benchmarks; every job gets
// a unique simulation seed so nothing is served from the cache and the
// injected-panic accounting stays exact.
func specFor(seed uint64, i int) server.JobSpec {
	benches := []string{"BS", "SAD"}
	bench := benches[i%len(benches)]
	jobSeed := seed*1_000_003 + uint64(i) + 1
	var spec jobspec.Spec
	switch {
	case i%7 == 3:
		spec = jobspec.Pair(bench, benches[(i+1)%len(benches)], jobspec.PolicyChimera).
			WithWindowUs(500)
	case i%3 == 0:
		spec = jobspec.Solo(bench).WithWindowUs(200)
	default:
		// Drain baseline with a roomy constraint: finite estimates for
		// stalls to scale off, and a watchdog rescue that lands well
		// before the periodic task's deadline kill. The 1800 µs window
		// keeps every injected stall's watchdog check inside the run.
		spec = jobspec.Periodic(bench, jobspec.PolicyDrain).
			WithWindowUs(1800).WithConstraintUs(600)
	}
	return spec.WithSeed(jobSeed)
}

// withRetry re-invokes fn while it reports a retryable failure. The
// typed client already retries transport errors and 503s internally;
// this outer loop only absorbs the rare deterministic case where the
// plan spends more consecutive faults on one logical call than the
// client's attempt budget.
func withRetry[T any](fn func() (T, error)) (T, error) {
	var v T
	var err error
	for i := 0; i < 25; i++ {
		if v, err = fn(); err == nil {
			return v, nil
		}
	}
	return v, err
}

// run executes the campaign and prints the deterministic report.
func run(seed uint64, jobs, budget int, watchdog float64) (violations int, err error) {
	plan := campaignPlan(seed)
	reg := metrics.NewRegistry()
	srv := server.New(server.Config{
		Workers:  2,
		QueueCap: jobs + 8,
		// A tight LRU cap keeps the result cache evicting under load, so
		// the campaign also exercises re-execution of evicted entries.
		CacheCap:       32,
		Registry:       reg,
		Faults:         plan,
		RetryBudget:    budget,
		WatchdogK:      watchdog,
		DefaultTimeout: 5 * time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: plan.Middleware(srv.Handler())}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := client.New("http://"+ln.Addr().String(),
		client.WithMaxAttempts(8),
		client.WithBaseDelay(time.Millisecond),
		client.WithRand(func() float64 { return 0 }),
	)

	fmt.Printf("chimerachaos: campaign seed=%d jobs=%d retry-budget=%d watchdog=%g\n",
		seed, jobs, budget, watchdog)
	fmt.Printf("chimerachaos: plan %s\n", plan.Fingerprint())

	fail := func(format string, args ...any) {
		violations++
		fmt.Printf("chimerachaos: VIOLATION: %s\n", fmt.Sprintf(format, args...))
	}

	// Submit serially with ?wait=1 so the request sequence — and with
	// it every index-hashed HTTP fault decision — is deterministic.
	ctx := context.Background()
	ids := make(map[string]int, jobs)
	done := 0
	for i := 0; i < jobs; i++ {
		spec := specFor(seed, i)
		st, err := withRetry(func() (server.JobStatus, error) { return c.SubmitWait(ctx, spec) })
		if err != nil {
			fail("job %d: lost to submit error: %v", i, err)
			continue
		}
		if prev, dup := ids[st.ID]; dup {
			fail("job %d: duplicate id %s (also job %d)", i, st.ID, prev)
			continue
		}
		ids[st.ID] = i
		if st.State != server.StateDone {
			fail("job %d (%s): finished %s: %s", i, st.ID, st.State, st.Error)
			continue
		}
		if len(st.Result) == 0 {
			fail("job %d (%s): done without result", i, st.ID)
			continue
		}
		// Re-fetch over the faulted GET path: the payload must match
		// the one the submission returned (exactly-one result).
		body, err := withRetry(func() ([]byte, error) { return c.Result(ctx, st.ID) })
		if err != nil {
			fail("job %d (%s): result fetch: %v", i, st.ID, err)
			continue
		}
		if !bytes.Equal(bytes.TrimSpace(body), []byte(st.Result)) {
			fail("job %d (%s): result mismatch between wait and fetch", i, st.ID)
			continue
		}
		done++
	}

	// Server-side retention: exactly one record per submission.
	list, err := withRetry(func() ([]server.JobStatus, error) { return c.List(ctx) })
	if err != nil {
		return violations, fmt.Errorf("list: %w", err)
	}
	if len(list) != jobs {
		fail("server retained %d jobs, want %d", len(list), jobs)
	}
	for _, st := range list {
		if _, ok := ids[st.ID]; !ok {
			fail("server retained job %s that was never acknowledged", st.ID)
		}
	}

	counts := plan.Counts()
	pool := srv.Pool().Stats()
	retries := reg.Counter(server.MetricJobRetries).Value()
	stalls := reg.Counter(engine.MetricStallsInjected).Value()
	escalations := reg.Counter(engine.MetricEscalations).Value()

	if pool.Panics != counts.JobPanics {
		fail("pool recovered %d panics, plan injected %d", pool.Panics, counts.JobPanics)
	}
	if retries != counts.JobPanics {
		fail("%s = %d, want %d (every injected panic retried exactly once)",
			server.MetricJobRetries, retries, counts.JobPanics)
	}
	if stalls != counts.EngineStalls {
		fail("%s = %d, plan injected %d", engine.MetricStallsInjected, stalls, counts.EngineStalls)
	}
	if escalations < counts.EngineStalls {
		fail("%s = %d, want >= %d (every stalled request rescued)",
			engine.MetricEscalations, escalations, counts.EngineStalls)
	}
	if got := reg.Counter(server.MetricJobsFailed).Value(); got != 0 {
		fail("%s = %d, want 0", server.MetricJobsFailed, got)
	}
	evictions := srv.Pool().Cache().Stats().Evictions
	if jobs > 32 && evictions == 0 {
		fail("cache never evicted under load (%d jobs over a 32-entry cap)", jobs)
	}

	fmt.Printf("chimerachaos: jobs submitted=%d done=%d\n", jobs, done)
	fmt.Printf("chimerachaos: injected panics=%d slowdowns=%d stalls=%d 503s=%d resets=%d delays=%d\n",
		counts.JobPanics, counts.JobSlowdowns, counts.EngineStalls,
		counts.HTTPErrors, counts.HTTPResets, counts.HTTPDelays)
	fmt.Printf("chimerachaos: recovered retries=%d escalations=%d pool_panics=%d evictions=%d\n",
		retries, escalations, pool.Panics, evictions)
	if violations == 0 {
		fmt.Println("chimerachaos: invariants OK")
	} else {
		fmt.Printf("chimerachaos: %d invariant violation(s)\n", violations)
	}
	return violations, nil
}
