// Command benchjson converts `go test -bench` output into a small
// versioned JSON baseline file. It reads the benchmark run on stdin,
// echoes it unchanged to stdout (so `make bench` still shows the live
// numbers), and writes one JSON document per run:
//
//	{
//	  "v": 1,
//	  "goos": "linux", "goarch": "amd64", "pkg": "chimera", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "Simulation", "iterations": 12,
//	     "metrics": {"B/op": ..., "allocs/op": ..., "ns/op": ..., "ns/sim-cycle": ...}}
//	  ]
//	}
//
// Standard (-benchmem) and custom (b.ReportMetric) metrics are treated
// uniformly: every "value unit" pair after the iteration count becomes a
// metrics entry, so new b.ReportMetric series show up in the baseline
// without touching this tool. Metric keys marshal in sorted order —
// diffs of BENCH_core.json across PRs show only value drift.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -out BENCH_core.json
//
// Flags:
//
//	-out FILE  write the JSON baseline to FILE (required)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baseline is the emitted document.
type baseline struct {
	V          int     `json:"v"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

// entry is one benchmark result.
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "write the JSON baseline to FILE (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	if err := run(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// run tees stdin to stdout while collecting the baseline, then writes it.
func run(out string) error {
	b := baseline{V: 1}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			b.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			b.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			b.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			b.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if e, ok := parseResult(line); ok {
				b.Benchmarks = append(b.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(doc, '\n'), 0o644)
}

// parseResult parses one `BenchmarkName[-P] N value unit [value unit]...`
// result line; ok is false for any other line.
func parseResult(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so baselines diff cleanly across
	// machines with different core counts.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value/unit; tolerate a trailing odd field.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return entry{}, false
	}
	return e, true
}
