// Command servesmoke is the end-to-end smoke test behind `make
// serve-smoke`: it boots a real chimerad on a random port, drives the
// full client path — submit, poll to completion, fetch the result,
// cancel a second job, scrape /metrics — then sends SIGTERM and
// verifies the daemon drains gracefully (exit 0). Any failure exits
// non-zero with a diagnostic.
//
// Usage:
//
//	servesmoke -bin ./chimerad
//
// Flags:
//
//	-bin PATH     chimerad binary to boot (required)
//	-timeout D    overall smoke budget (default 2m)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	bin := flag.String("bin", "", "chimerad binary to boot (required)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

// run executes the whole smoke sequence against one daemon instance.
func run(ctx context.Context, bin string) error {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "16", "-cache", "64")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("boot %s: %w", bin, err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The daemon prints "chimerad listening on ADDR" once the socket is
	// bound; everything after that is drain chatter.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "chimerad listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		return fmt.Errorf("daemon never announced its address")
	}
	fmt.Printf("servesmoke: daemon up at %s\n", addr)
	drained := make(chan bool, 1)
	go func() {
		for sc.Scan() {
			if strings.Contains(sc.Text(), "chimerad drained") {
				drained <- true
				return
			}
		}
		drained <- false
	}()

	c := client.New("http://" + addr)

	// Submit a small periodic job and poll it to completion.
	st, err := c.Submit(ctx, server.JobSpec{Kind: server.KindPeriodic, Bench: "SAD", WindowUs: 2000})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fin, err := c.Await(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		return fmt.Errorf("await %s: %w", st.ID, err)
	}
	if fin.State != server.StateDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, fin.State, fin.Error)
	}
	payload, err := c.Result(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("result %s: %w", st.ID, err)
	}
	var res server.JobResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return fmt.Errorf("result payload: %w", err)
	}
	if res.Periodic == nil || res.Periodic.Periods == 0 {
		return fmt.Errorf("periodic job evaluated no periods: %+v", res)
	}
	fmt.Printf("servesmoke: job %s done, %d periods, violation rate %.3f\n",
		st.ID, res.Periodic.Periods, res.Periodic.ViolationRate)

	// Cancel a long-running job and confirm the engine stopped.
	long, err := c.Submit(ctx, server.JobSpec{Kind: server.KindPeriodic, Bench: "SAD", WindowUs: 60e6})
	if err != nil {
		return fmt.Errorf("submit long: %w", err)
	}
	if err := c.Cancel(ctx, long.ID); err != nil {
		return fmt.Errorf("cancel %s: %w", long.ID, err)
	}
	if fin, err = c.Await(ctx, long.ID, 25*time.Millisecond); err != nil {
		return fmt.Errorf("await cancelled %s: %w", long.ID, err)
	}
	if fin.State != server.StateCanceled {
		return fmt.Errorf("cancelled job finished %s", fin.State)
	}
	fmt.Printf("servesmoke: job %s cancelled\n", long.ID)

	// Scrape metrics and sanity-check the counters this run must have
	// produced.
	metricsText, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"chimera_server_jobs_submitted 2",
		"chimera_server_jobs_completed 1",
		"chimera_simjob_jobs_run",
		"chimera_server_job_latency_ms_bucket",
	} {
		if !strings.Contains(metricsText, want) {
			return fmt.Errorf("metrics scrape missing %q", want)
		}
	}
	fmt.Println("servesmoke: metrics scrape ok")

	// Graceful drain: SIGTERM, then the process must print its drained
	// marker and exit 0. The pipe must be fully read before cmd.Wait —
	// Wait closes it and would discard a still-buffered marker line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	var sawDrain bool
	select {
	case sawDrain = <-drained:
	case <-ctx.Done():
		return fmt.Errorf("daemon did not drain after SIGTERM")
	}
	if !sawDrain {
		return fmt.Errorf("daemon exited without draining")
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	case <-ctx.Done():
		return fmt.Errorf("daemon did not exit after SIGTERM")
	}
	fmt.Println("servesmoke: graceful drain ok")
	return nil
}
