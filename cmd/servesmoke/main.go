// Command servesmoke is the end-to-end smoke test behind `make
// serve-smoke`: it boots a real chimerad on a random port, drives the
// full client path — submit, poll to completion, fetch the result,
// cancel a second job, scrape /metrics — then sends SIGTERM and
// verifies the daemon drains gracefully (exit 0). A second leg reboots
// the daemon with the fault plane armed (-fault-* flags) and verifies
// the retrying client still gets every result while the resilience
// counters surface on /metrics. Any failure exits non-zero with a
// diagnostic.
//
// Usage:
//
//	servesmoke -bin ./chimerad
//
// Flags:
//
//	-bin PATH     chimerad binary to boot (required)
//	-timeout D    overall smoke budget (default 2m)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	bin := flag.String("bin", "", "chimerad binary to boot (required)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	if err := runChaos(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL (chaos leg): %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

// daemon is one booted chimerad instance under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	// drained reports whether the process printed its drain marker
	// before stdout closed.
	drained chan bool
	// faultPlan receives the fingerprint the daemon printed at boot when
	// its fault plane was armed ("" when it never printed one).
	faultPlan chan string
}

// bootDaemon starts bin with the given extra flags on a random port and
// waits for its address announcement.
func bootDaemon(ctx context.Context, bin string, extra ...string) (*daemon, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.CommandContext(ctx, bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("boot %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, drained: make(chan bool, 1), faultPlan: make(chan string, 1)}

	// The daemon prints "chimerad listening on ADDR" once the socket is
	// bound; everything after that is the fault-plan banner (when armed)
	// and drain chatter.
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "chimerad listening on "); ok {
			d.addr = rest
			break
		}
	}
	if d.addr == "" {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never announced its address")
	}
	go func() {
		plan, drained := "", false
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "chimerad fault plan "); ok {
				plan = rest
			}
			if strings.Contains(line, "chimerad drained") {
				drained = true
				break
			}
		}
		d.faultPlan <- plan
		d.drained <- drained
	}()
	return d, nil
}

// kill force-stops the daemon (cleanup for error paths).
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
}

// drain sends SIGTERM and verifies the daemon prints its drain marker
// and exits 0. It returns the fault-plan fingerprint seen on stdout.
func (d *daemon) drain(ctx context.Context) (string, error) {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return "", fmt.Errorf("signal: %w", err)
	}
	// The pipe must be fully read before cmd.Wait — Wait closes it and
	// would discard a still-buffered marker line.
	var plan string
	var sawDrain bool
	select {
	case plan = <-d.faultPlan:
		sawDrain = <-d.drained
	case <-ctx.Done():
		return "", fmt.Errorf("daemon did not drain after SIGTERM")
	}
	if !sawDrain {
		return plan, fmt.Errorf("daemon exited without draining")
	}
	exit := make(chan error, 1)
	go func() { exit <- d.cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return plan, fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	case <-ctx.Done():
		return plan, fmt.Errorf("daemon did not exit after SIGTERM")
	}
	return plan, nil
}

// run executes the fault-free smoke sequence against one daemon
// instance.
func run(ctx context.Context, bin string) error {
	d, err := bootDaemon(ctx, bin, "-workers", "2", "-queue", "16", "-cache", "64")
	if err != nil {
		return err
	}
	defer d.kill()
	fmt.Printf("servesmoke: daemon up at %s\n", d.addr)

	c := client.New("http://" + d.addr)

	// Submit a small periodic job and poll it to completion. Specs are
	// built with the jobspec builders — the same construction path as
	// production callers.
	st, err := c.Submit(ctx, jobspec.Periodic("SAD", "").WithWindowUs(2000))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fin, err := c.Await(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		return fmt.Errorf("await %s: %w", st.ID, err)
	}
	if fin.State != server.StateDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, fin.State, fin.Error)
	}
	payload, err := c.Result(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("result %s: %w", st.ID, err)
	}
	var res server.JobResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return fmt.Errorf("result payload: %w", err)
	}
	if res.Periodic == nil || res.Periodic.Periods == 0 {
		return fmt.Errorf("periodic job evaluated no periods: %+v", res)
	}
	fmt.Printf("servesmoke: job %s done, %d periods, violation rate %.3f\n",
		st.ID, res.Periodic.Periods, res.Periodic.ViolationRate)

	// Cancel a long-running job and confirm the engine stopped.
	long, err := c.Submit(ctx, jobspec.Periodic("SAD", "").WithWindowUs(60e6))
	if err != nil {
		return fmt.Errorf("submit long: %w", err)
	}
	if err := c.Cancel(ctx, long.ID); err != nil {
		return fmt.Errorf("cancel %s: %w", long.ID, err)
	}
	if fin, err = c.Await(ctx, long.ID, 25*time.Millisecond); err != nil {
		return fmt.Errorf("await cancelled %s: %w", long.ID, err)
	}
	if fin.State != server.StateCanceled {
		return fmt.Errorf("cancelled job finished %s", fin.State)
	}
	fmt.Printf("servesmoke: job %s cancelled\n", long.ID)

	// Scrape metrics and sanity-check the counters this run must have
	// produced.
	metricsText, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"chimera_server_jobs_submitted 2",
		"chimera_server_jobs_completed 1",
		"chimera_simjob_jobs_run",
		"chimera_server_job_latency_ms_bucket",
	} {
		if !strings.Contains(metricsText, want) {
			return fmt.Errorf("metrics scrape missing %q", want)
		}
	}
	fmt.Println("servesmoke: metrics scrape ok")

	// Graceful drain: SIGTERM, then the process must print its drained
	// marker and exit 0.
	if _, err := d.drain(ctx); err != nil {
		return err
	}
	fmt.Println("servesmoke: graceful drain ok")
	return nil
}

// runChaos reboots the daemon with the fault plane armed — every
// distinct job's first execution panics (rate 1, cap 1) and a fifth of
// HTTP requests are 503'd — and verifies the daemon announces its plan
// fingerprint, the retrying client still completes every job, and the
// resilience counters land on /metrics.
func runChaos(ctx context.Context, bin string) error {
	d, err := bootDaemon(ctx, bin,
		"-workers", "2", "-queue", "16",
		"-retry-budget", "1", "-watchdog", "2",
		"-fault-seed", "9",
		"-fault-job-panic", "1", "-fault-panic-cap", "1",
		"-fault-http-error", "0.2", "-fault-http-cap", "4",
	)
	if err != nil {
		return err
	}
	defer d.kill()
	fmt.Printf("servesmoke: faulted daemon up at %s\n", d.addr)

	c := client.New("http://"+d.addr, client.WithMaxAttempts(8))

	const jobs = 3
	for i := 0; i < jobs; i++ {
		// Distinct seeds make each submission a distinct simjob, so the
		// retry-counter check below is exact.
		spec := jobspec.Solo("SAD").WithWindowUs(100).WithSeed(uint64(9000 + i))
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			return fmt.Errorf("job %d: submit: %w", i, err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("job %d (%s) finished %s: %s", i, st.ID, st.State, st.Error)
		}
		if len(st.Result) == 0 {
			return fmt.Errorf("job %d (%s) done without result", i, st.ID)
		}
	}

	// Every job's first execution panicked and was retried exactly once;
	// the injected and recovered counts must both surface on /metrics.
	metricsText, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		fmt.Sprintf("chimera_faults_job_panics %d", jobs),
		fmt.Sprintf("chimera_server_job_retries %d", jobs),
		fmt.Sprintf("chimera_simjob_panics %d", jobs),
		"chimera_server_jobs_failed 0",
	} {
		if !strings.Contains(metricsText, want) {
			return fmt.Errorf("metrics scrape missing %q", want)
		}
	}
	fmt.Printf("servesmoke: %d jobs recovered from injected panics\n", jobs)

	plan, err := d.drain(ctx)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(plan, "faults:seed=9;") {
		return fmt.Errorf("daemon announced fault plan %q, want seed 9", plan)
	}
	fmt.Printf("servesmoke: fault plan %s verified, graceful drain ok\n", plan)
	return nil
}
