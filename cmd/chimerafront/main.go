// Command chimerafront is the fleet front proxy (docs/cluster.md): it
// admits simulation jobs fleet-wide with load shedding, deduplicates
// finished work through the replicas' peer result-caches, and routes
// every submission to the chimerad replica owning its jobspec content
// hash on a consistent-hash ring, failing over along the ring when a
// replica is dead or draining.
//
// The public surface is the same HTTP/JSON API one chimerad serves
// (docs/server.md); job IDs gain a replica prefix ("r1.j7") so status,
// result, trace and cancel requests route back to the owning replica.
//
// Usage:
//
//	chimerafront -replicas URL,URL,... [flags]
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8090; :0 picks
//	                  a free port, printed on stdout as "chimerafront
//	                  listening on ADDR")
//	-replicas LIST    comma-separated replica base URLs (required),
//	                  e.g. http://127.0.0.1:8080,http://127.0.0.1:8081
//	-vnodes N         virtual nodes per replica on the ring (default 64)
//	-max-inflight N   fleet-wide concurrent-admission cap; beyond it
//	                  submissions shed with 429 + Retry-After
//	                  (default 256)
//	-probe D          health-probe cadence over the replicas
//	                  (default 1s; 0 disables probing — demand-driven
//	                  marks still apply)
//
// SIGINT/SIGTERM shut the proxy down gracefully: in-flight proxied
// requests finish, then the process exits 0 after printing
// "chimerafront drained".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chimera/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for a random free port)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the ring")
	maxInflight := flag.Int("max-inflight", 256, "fleet-wide concurrent-admission cap")
	probe := flag.Duration("probe", time.Second, "health-probe cadence (0 disables probing)")
	flag.Parse()

	list := splitList(*replicas)
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "chimerafront: -replicas is required")
		os.Exit(2)
	}
	if err := run(*addr, list, *vnodes, *maxInflight, *probe); err != nil {
		fmt.Fprintf(os.Stderr, "chimerafront: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// run boots the proxy and blocks until a shutdown signal has drained.
func run(addr string, replicas []string, vnodes, maxInflight int, probe time.Duration) error {
	front := cluster.NewFront(cluster.FrontConfig{
		Replicas:    replicas,
		VNodes:      vnodes,
		MaxInflight: maxInflight,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The load generator and the fleet smoke discover a :0 port from
	// this line; keep its shape stable.
	fmt.Printf("chimerafront listening on %s\n", ln.Addr())
	fmt.Printf("chimerafront fronting %d replicas\n", front.Ring().Len())

	probeCtx, probeCancel := context.WithCancel(context.Background())
	defer probeCancel()
	if probe > 0 {
		go func() {
			tick := time.NewTicker(probe)
			defer tick.Stop()
			for {
				select {
				case <-probeCtx.Done():
					return
				case <-tick.C:
					front.ProbeOnce(probeCtx)
				}
			}
		}()
	}

	hs := &http.Server{Handler: front.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "chimerafront: %v: draining\n", sig)
	}
	probeCancel()

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "chimerafront: http shutdown: %v\n", err)
	}
	fmt.Println("chimerafront drained")
	return nil
}
