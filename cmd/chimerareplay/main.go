// Command chimerareplay re-drives a recorded workload trace against
// chimerad and writes a deterministic replay report: same trace + same
// seed(s) ⇒ byte-identical report, which is what makes a recorded
// campaign reproducible evidence instead of a one-off run.
//
// Traces are the versioned JSONL format of internal/jobspec
// (docs/jobs.md), produced by chimerad -record or chimeraload -record.
// Requests are re-submitted strictly in admission order, one at a time,
// so the result cache sees the same identity sequence on every replay
// and the report's dedup flags are the cache-hit pattern.
//
// Usage:
//
//	chimerareplay -trace FILE [flags]
//
// Flags:
//
//	-trace FILE      the JSONL workload trace to replay (required)
//	-addr URL        drive a running daemon ("http://host:port");
//	                 default boots a hermetic in-process service core
//	                 with a cold cache — the reproducible mode
//	-workers N       in-process mode: concurrent job executors
//	                 (default 2)
//	-retry-budget N  in-process mode: per-job panic retries (default 0)
//	-out FILE        write the report to FILE (default stdout)
//	-v               print one progress line per replayed request
//
// In-process timing-fault flags (report-invariant by construction;
// useful for exercising the determinism claim under perturbation):
//
//	-fault-seed N            decision seed
//	-fault-job-slowdown P    simjob execution delay rate [0,1]
//	-fault-slowdown-delay D  injected execution delay (default 1ms)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chimera/internal/faults"
	"chimera/internal/jobspec"
	"chimera/internal/replay"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

// options carries the flag-settable knobs into run.
type options struct {
	trace       string
	addr        string
	workers     int
	retryBudget int
	out         string
	verbose     bool
	faults      faults.Config
}

func main() {
	var o options
	flag.StringVar(&o.trace, "trace", "", "JSONL workload trace to replay (required)")
	flag.StringVar(&o.addr, "addr", "", "base URL of a running daemon (default: in-process core)")
	flag.IntVar(&o.workers, "workers", 2, "in-process mode: concurrent job executors")
	flag.IntVar(&o.retryBudget, "retry-budget", 0, "in-process mode: per-job panic retries")
	flag.StringVar(&o.out, "out", "", "report destination (default stdout)")
	flag.BoolVar(&o.verbose, "v", false, "print one progress line per replayed request")
	flag.Uint64Var(&o.faults.Seed, "fault-seed", 0, "fault-injection decision seed")
	flag.Float64Var(&o.faults.JobSlowdown, "fault-job-slowdown", 0, "simjob execution delay rate [0,1]")
	flag.DurationVar(&o.faults.SlowdownDelay, "fault-slowdown-delay", time.Millisecond, "injected execution delay")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "chimerareplay: %v\n", err)
		os.Exit(1)
	}
}

// run loads the trace, replays it and writes the report.
func run(o options) error {
	if o.trace == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(o.trace)
	if err != nil {
		return err
	}
	records, err := jobspec.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %s holds no records", o.trace)
	}

	var progress io.Writer
	if o.verbose {
		progress = os.Stderr
	}
	ctx := context.Background()

	var rep *replay.Report
	if o.addr != "" {
		rep, err = replay.Run(ctx, replay.Options{
			Records:  records,
			Client:   client.New(o.addr),
			Progress: progress,
		})
	} else {
		cfg := server.Config{Workers: o.workers, RetryBudget: o.retryBudget}
		if o.faults.JobSlowdown > 0 {
			o.faults.Sleep = time.Sleep
			cfg.Faults = faults.New(o.faults)
			fmt.Fprintf(os.Stderr, "chimerareplay: fault plan %s\n", cfg.Faults.Fingerprint())
		}
		rep, err = replay.RunInProcess(ctx, records, cfg, progress)
	}
	if err != nil {
		return err
	}

	out := os.Stdout
	if o.out != "" {
		out, err = os.Create(o.out)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	if _, err := out.Write(rep.Render()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chimerareplay: %d replayed, %d done, %d deduped\n",
		rep.Replayed, rep.Done, rep.Deduped)
	return nil
}
