// Command replaysmoke is the end-to-end record → replay → diff check
// behind `make replay-smoke`: it boots a real chimerad with -record,
// drives a mixed campaign through the typed client (specs built with
// the jobspec builders — the same construction path as production
// callers), drains the daemon, then replays the captured trace three
// times with the chimerareplay binary — twice clean, once with
// timing-only faults armed — and requires all three reports to be
// byte-identical. Any divergence means replay determinism broke.
//
// Usage:
//
//	replaysmoke -daemon ./chimerad -replay ./chimerareplay
//
// Flags:
//
//	-daemon PATH  chimerad binary to boot (required)
//	-replay PATH  chimerareplay binary to run (required)
//	-timeout D    overall smoke budget (default 2m)
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"chimera/internal/jobspec"
	"chimera/internal/server"
	"chimera/internal/server/client"
)

func main() {
	daemonBin := flag.String("daemon", "", "chimerad binary to boot (required)")
	replayBin := flag.String("replay", "", "chimerareplay binary to run (required)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall smoke budget")
	flag.Parse()
	if *daemonBin == "" || *replayBin == "" {
		fmt.Fprintln(os.Stderr, "replaysmoke: -daemon and -replay are required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *daemonBin, *replayBin); err != nil {
		fmt.Fprintf(os.Stderr, "replaysmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("replaysmoke: PASS")
}

// campaign is the recorded workload: every kind, a policy spread, and
// an exact duplicate whose replay must dedup.
func campaign() []jobspec.Spec {
	return []jobspec.Spec{
		jobspec.Solo("SAD").WithWindowUs(100),
		jobspec.Periodic("SAD", jobspec.PolicyChimera).WithWindowUs(100).WithPriority(2),
		jobspec.Periodic("SAD", jobspec.PolicyDrain).WithWindowUs(100),
		jobspec.Pair("SAD", "MUM", jobspec.PolicyFCFS).WithWindowUs(100),
		jobspec.Solo("SAD").WithWindowUs(100), // duplicate: must dedup
	}
}

// run executes the record leg, then the three replay legs.
func run(ctx context.Context, daemonBin, replayBin string) error {
	dir, err := os.MkdirTemp("", "replaysmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	traceFile := filepath.Join(dir, "trace.jsonl")

	if err := record(ctx, daemonBin, traceFile); err != nil {
		return fmt.Errorf("record leg: %w", err)
	}

	records, err := readTrace(traceFile)
	if err != nil {
		return err
	}
	if len(records) != len(campaign()) {
		return fmt.Errorf("trace holds %d records, want %d", len(records), len(campaign()))
	}
	fmt.Printf("replaysmoke: recorded %d requests\n", len(records))

	// Replay twice clean, once with every execution slowed down —
	// timing faults must not perturb the report.
	reports := make([][]byte, 3)
	for i, extra := range [][]string{
		nil,
		nil,
		{"-fault-seed", "5", "-fault-job-slowdown", "1", "-fault-slowdown-delay", "2ms"},
	} {
		out := filepath.Join(dir, fmt.Sprintf("report%d.json", i))
		args := append([]string{"-trace", traceFile, "-out", out}, extra...)
		cmd := exec.CommandContext(ctx, replayBin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("replay leg %d: %w", i, err)
		}
		if reports[i], err = os.ReadFile(out); err != nil {
			return err
		}
	}
	if !bytes.Equal(reports[0], reports[1]) {
		return fmt.Errorf("two clean replays produced different reports")
	}
	if !bytes.Equal(reports[0], reports[2]) {
		return fmt.Errorf("timing-faulted replay diverged from the clean report")
	}

	// Sanity-check the report's content, not just its stability.
	var rep struct {
		Replayed int `json:"replayed"`
		Done     int `json:"done"`
		Deduped  int `json:"deduped"`
	}
	if err := json.Unmarshal(reports[0], &rep); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if rep.Replayed != len(records) || rep.Done != len(records) {
		return fmt.Errorf("report replayed %d / done %d, want %d", rep.Replayed, rep.Done, len(records))
	}
	if rep.Deduped < 1 {
		return fmt.Errorf("duplicate submission did not dedup on replay")
	}
	fmt.Printf("replaysmoke: 3 replays byte-identical (%d done, %d deduped)\n", rep.Done, rep.Deduped)
	return nil
}

// record boots the daemon with -record, drives the campaign and drains.
func record(ctx context.Context, daemonBin, traceFile string) error {
	cmd := exec.CommandContext(ctx, daemonBin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-record", traceFile)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("boot %s: %w", daemonBin, err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "chimerad listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		return fmt.Errorf("daemon never announced its address")
	}
	drained := make(chan bool, 1)
	go func() {
		saw := false
		for sc.Scan() {
			if strings.Contains(sc.Text(), "chimerad drained") {
				saw = true
				break
			}
		}
		drained <- saw
	}()
	fmt.Printf("replaysmoke: recording daemon up at %s\n", addr)

	c := client.New("http://" + addr)
	for i, spec := range campaign() {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("job %d finished %s: %s", i, st.State, st.Error)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case saw := <-drained:
		if !saw {
			return fmt.Errorf("daemon exited without draining")
		}
	case <-ctx.Done():
		return fmt.Errorf("daemon did not drain after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("daemon exited non-zero: %w", err)
	}
	return nil
}

// readTrace loads and validates the recorded trace.
func readTrace(path string) ([]jobspec.TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return jobspec.ReadTrace(f)
}
