// Command doccheck fails when a package exports an undocumented symbol.
//
// Usage:
//
//	doccheck <package-dir>...
//
// Each argument is a directory containing one Go package. Every
// exported top-level declaration — functions, methods, types, constants
// and variables — in non-test files must carry a doc comment (on the
// declaration or its enclosing group). Violations are listed one per
// line as file:line: name, and the exit status is 1 if any were found.
//
// The docs-check CI step runs it over the observability packages
// (internal/trace, internal/metrics — docs/observability.md), the
// service packages (internal/server and its client — docs/server.md)
// and the static-analysis framework (internal/lint —
// docs/static-analysis.md) so no documented surface can drift ahead of
// the godoc.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		violations, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols\n", bad)
		os.Exit(1)
	}
}

// check parses one package directory and returns a sorted list of
// "file:line: name undocumented" violations.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	flag := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s is undocumented", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						flag(d.Pos(), describeFunc(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, flag)
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// describeFunc names a function or method for the violation message.
func describeFunc(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "function " + d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if ident, ok := recv.(*ast.Ident); ok {
		return fmt.Sprintf("method %s.%s", ident.Name, d.Name.Name)
	}
	return "method " + d.Name.Name
}

// checkGenDecl flags undocumented exported names in a type, const or
// var declaration. A doc comment on the grouped declaration covers its
// specs only when no spec introduces an exported name silently: each
// exported spec needs its own comment unless the group has one and is
// a const/var block (the iota-enum idiom documents the block).
func checkGenDecl(d *ast.GenDecl, flag func(token.Pos, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Name.IsExported() && ts.Doc == nil && d.Doc == nil {
				flag(ts.Pos(), "type "+ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if vs.Doc == nil && vs.Comment == nil && d.Doc == nil {
					flag(name.Pos(), kind+" "+name.Name)
				}
			}
		}
	}
}
