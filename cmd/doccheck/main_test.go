package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckFlagsUndocumentedExports(t *testing.T) {
	dir := writePkg(t, `package x

func Exported() {}

type T struct{}

const C = 1

var V int

func unexported() {}
`)
	got, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("violations = %v, want 4", got)
	}
	for _, want := range []string{"function Exported", "type T", "const C", "var V"} {
		found := false
		for _, v := range got {
			if strings.Contains(v, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing violation for %s in %v", want, got)
		}
	}
}

func TestCheckAcceptsDocumentedAndGrouped(t *testing.T) {
	dir := writePkg(t, `package x

// Exported does things.
func Exported() {}

// T is a thing.
type T struct{}

// Enum values of the thing.
const (
	A = iota
	B
)

// M is T's method.
func (T) M() {}

var (
	// V is documented per spec.
	V int
	w int
)
`)
	got, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("false positives: %v", got)
	}
}

func TestCheckFlagsUndocumentedMethod(t *testing.T) {
	dir := writePkg(t, `package x

// T is documented.
type T struct{}

func (T) M() {}
`)
	got, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "method T.M") {
		t.Errorf("violations = %v, want method T.M", got)
	}
}

func TestCheckIgnoresTestFiles(t *testing.T) {
	dir := writePkg(t, "package x\n")
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte("package x\n\nfunc Helper() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("test files must be exempt: %v", got)
	}
}
