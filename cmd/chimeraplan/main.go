// Command chimeraplan runs Chimera's preemption selection (Algorithm 1)
// over a scheduler snapshot supplied as JSON — the decision core as a
// standalone tool.
//
// Usage:
//
//	chimeraplan < snapshot.json
//	chimeraplan -i snapshot.json -text
//	chimeraplan -example          # print a sample snapshot and exit
//
// The snapshot names the victim kernel (either a Table 2 catalog label
// or explicit context/occupancy/statistics), the latency constraint,
// the number of SMs wanted, and each SM's resident thread blocks. The
// output assigns a technique to every block of every selected SM.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chimera"
	"chimera/internal/planio"
	"chimera/internal/tablefmt"
)

const exampleSnapshot = `{
  "constraint_us": 15,
  "num_preempts": 2,
  "kernel": {"catalog_label": "BS.0"},
  "sms": [
    {"id": 0, "tbs": [
      {"index": 0, "executed": 2000, "run_cycles": 8000},
      {"index": 1, "executed": 20000, "run_cycles": 80000},
      {"index": 2, "executed": 41000, "run_cycles": 164000},
      {"index": 3, "executed": 30000, "run_cycles": 120000}
    ]},
    {"id": 1, "tbs": [
      {"index": 4, "executed": 35000, "run_cycles": 140000},
      {"index": 5, "executed": 38000, "run_cycles": 152000},
      {"index": 6, "executed": 40000, "run_cycles": 160000},
      {"index": 7, "executed": 39000, "run_cycles": 156000}
    ]},
    {"id": 2, "tbs": [
      {"index": 8, "executed": 22000, "run_cycles": 88000},
      {"index": 9, "executed": 25000, "run_cycles": 100000},
      {"index": 10, "executed": 21000, "run_cycles": 84000},
      {"index": 11, "executed": 26000, "run_cycles": 104000}
    ]}
  ]
}`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chimeraplan: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool against explicit streams (testable main body).
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("chimeraplan", flag.ContinueOnError)
	input := fs.String("i", "", "snapshot file (default: stdin)")
	text := fs.Bool("text", false, "print a text table instead of JSON")
	example := fs.Bool("example", false, "print a sample snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *example {
		fmt.Fprintln(stdout, exampleSnapshot)
		return nil
	}

	src := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	cfg := chimera.DefaultConfig()
	req, in, err := planio.Decode(src, cfg)
	if err != nil {
		return err
	}
	sel := chimera.Select(req, in)

	if !*text {
		return planio.Encode(stdout, sel)
	}
	t := tablefmt.New("Chimera preemption plan", "SM", "Latency", "Overhead", "Blocks")
	for _, p := range sel.Plans {
		blocks := ""
		for i, tb := range p.TBs {
			if i > 0 {
				blocks += " "
			}
			blocks += fmt.Sprintf("%d:%v", tb.Index, tb.Technique)
		}
		t.AddRow(
			fmt.Sprintf("%d", p.SM),
			tablefmt.Us(p.LatencyCycles/1400),
			tablefmt.F(p.OverheadInsts, 0),
			blocks,
		)
	}
	if sel.Forced > 0 {
		t.Note = fmt.Sprintf("%d SM(s) selected best-effort: no plan met the constraint", sel.Forced)
	}
	return t.Render(stdout)
}
