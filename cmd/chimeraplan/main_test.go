package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExampleRoundTrip(t *testing.T) {
	// The -example snapshot must itself be a valid input.
	var example strings.Builder
	if err := run([]string{"-example"}, strings.NewReader(""), &example); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(nil, strings.NewReader(example.String()), &out); err != nil {
		t.Fatal(err)
	}
	var plans []map[string]interface{}
	if err := json.Unmarshal([]byte(out.String()), &plans); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(plans) != 2 {
		t.Errorf("selected %d SMs, want 2", len(plans))
	}
}

func TestTextOutput(t *testing.T) {
	var example strings.Builder
	if err := run([]string{"-example"}, strings.NewReader(""), &example); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-text"}, strings.NewReader(example.String()), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Chimera preemption plan", "Flush", "SM"} {
		if !strings.Contains(got, want) {
			t.Errorf("text output missing %q:\n%s", want, got)
		}
	}
}

func TestBadInput(t *testing.T) {
	if err := run(nil, strings.NewReader("{not json"), &strings.Builder{}); err == nil {
		t.Error("garbage input accepted")
	}
	if err := run([]string{"-i", "/nonexistent/file"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus-flag"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("unknown flag accepted")
	}
}
