// Realtime: the §4.1 scenario — a periodic hard-deadline task (launched
// every 1ms, needing half the SMs for 200µs) preempts a GPGPU benchmark.
// The example compares the three single-technique baselines against
// Chimera on deadline violations and throughput overhead.
//
// Run with: go run ./examples/realtime [benchmark] [window-µs]
// e.g.:     go run ./examples/realtime FWT 20000
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"chimera"
)

func main() {
	bench := "FWT"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	windowUs := 20000.0
	if len(os.Args) > 2 {
		v, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatalf("bad window: %v", err)
		}
		windowUs = v
	}

	runner, err := chimera.NewScenarioRunner(
		chimera.Microseconds(windowUs),
		chimera.Microseconds(15),
		1,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Periodic real-time task vs %s over %.0fµs (15µs constraint):\n\n", bench, windowUs)
	fmt.Printf("%-10s  %10s  %9s  %22s\n", "policy", "violations", "overhead", "technique mix (blocks)")
	for _, policy := range chimera.StandardPolicies() {
		res, err := runner.RunPeriodic(bench, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %9.1f%%  %8.1f%%  switch:%d drain:%d flush:%d\n",
			res.Policy, 100*res.ViolationRate, 100*res.Overhead,
			res.Mix[chimera.Switch], res.Mix[chimera.Drain], res.Mix[chimera.Flush])
	}
	fmt.Println("\nChimera meets the deadline by flushing idempotent blocks instantly,")
	fmt.Println("draining blocks near completion, and context-switching the rest when")
	fmt.Println("the constraint allows — per SM and per thread block (paper §3.3).")
}
