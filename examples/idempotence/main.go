// Idempotence: the compiler side of Chimera (§2.3, §3.4). Three kernels
// are written in the miniature SIMT IR; the analysis classifies them as
// strictly idempotent or not, locates the relaxed-idempotence breach
// point, and the instrumentation pass inserts the notification stores
// that tell the scheduler when a thread block stops being flushable.
//
// Run with: go run ./examples/idempotence
package main

import (
	"fmt"
	"log"

	"chimera"
)

func main() {
	// saxpy: y[i] = a*x[i] + y[i]. Reads y, then overwrites it — a
	// classic non-idempotent kernel, breaching at the (late) store.
	saxpy := chimera.NewKernelBuilder("saxpy").
		LoadG("x", "tid").
		LoadG("y", "tid").
		ALU(6).
		StoreG("y", "tid").
		Build()

	// vecadd: c[i] = a[i] + b[i]. Output is a distinct buffer — strictly
	// idempotent, restartable at any point.
	vecadd := chimera.NewKernelBuilder("vecadd").
		LoadG("a", "tid").
		LoadG("b", "tid").
		ALU(4).
		StoreG("c", "tid").
		Build()

	// histogram: atomics break idempotence immediately.
	histogram := chimera.NewKernelBuilder("histogram")
	histogram.Loop(64, func(b *chimera.KernelBuilder) {
		b.LoadGVar("data", "i")
		b.ALU(2)
		b.AtomicG("bins", "?") // data-dependent bin: may alias anything
	})
	histo := histogram.Build()

	fmt.Println("Compiler-side idempotence analysis (§2.3/§3.4):")
	fmt.Println()
	for _, prog := range []*chimera.KernelProgram{saxpy, vecadd, histo} {
		res, err := chimera.AnalyzeKernel(prog)
		if err != nil {
			log.Fatal(err)
		}
		inst := chimera.InstrumentKernel(prog)
		fmt.Printf("kernel %-10s  %3d insts/warp  strict-idempotent=%-5v",
			prog.Name, res.Insts, res.StrictIdempotent)
		if res.StrictIdempotent {
			fmt.Printf("  flushable for its whole execution")
		} else {
			fmt.Printf("  breach at inst %d (%.0f%% through: %s)",
				res.FirstBreach, 100*res.BreachFraction(), res.BreachOp)
		}
		fmt.Printf("\n                   %d notification store(s) inserted before: %v\n\n",
			inst.NotifyCount, inst.Breaching)
	}

	// The scheduler-side consequence: a thread block of saxpy can be
	// flushed while it has not yet reached its store, even though the
	// kernel as a whole is non-idempotent — the relaxed condition that
	// makes SM flushing broadly applicable (Fig 9).
	res, err := chimera.AnalyzeKernel(saxpy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saxpy blocks stay flushable for the first %.0f%% of their execution\n", 100*res.BreachFraction())
	fmt.Println("under the relaxed condition; under the strict condition they are")
	fmt.Println("never flushable, and a flush-only scheduler cannot preempt them at")
	fmt.Println("all — the gap Figure 9 quantifies.")

	// And the proof, by functional execution: flush saxpy at every point
	// up to the breach and compare the memory image against an
	// undisturbed run, then flush one instruction past the breach.
	fmt.Println()
	undisturbed, err := chimera.ExecuteKernel(saxpy, -1)
	if err != nil {
		log.Fatal(err)
	}
	safe := 0
	for k := int64(0); k <= res.FirstBreach; k++ {
		m, err := chimera.ExecuteKernel(saxpy, k)
		if err != nil {
			log.Fatal(err)
		}
		if m.Equal(undisturbed) {
			safe++
		}
	}
	fmt.Printf("functional check: %d/%d flush points before the breach reproduce\n", safe, res.FirstBreach+1)
	fmt.Println("the exact memory image.")

	// Flushing past a breach is not harmless: re-executing histogram
	// after its first atomic double-counts.
	hres, err := chimera.AnalyzeKernel(histo)
	if err != nil {
		log.Fatal(err)
	}
	hClean, err := chimera.ExecuteKernel(histo, -1)
	if err != nil {
		log.Fatal(err)
	}
	hLate, err := chimera.ExecuteKernel(histo, hres.FirstBreach+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flushing histogram one instruction past its first atomic corrupts\n")
	fmt.Printf("the result (double-counted bins): %v\n", !hLate.Equal(hClean))

	// Table 2's verdicts come from exactly this analysis, run over the
	// catalog's 27 kernel programs:
	fmt.Println()
	cat := chimera.Catalog()
	fmt.Printf("catalog: %d of 27 kernels strictly idempotent (paper: 12 of 27)\n", cat.IdempotentCount())
	for _, s := range cat.Kernels() {
		if !s.Params.StrictIdempotent {
			fmt.Printf("  %-6s breach at %4.1f%%  (%s)\n",
				s.Params.Label, 100*s.Params.BreachFraction, s.Analysis.BreachOp)
		}
	}
}
