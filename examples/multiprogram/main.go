// Multiprogram: the §4.4 case study — two GPGPU benchmarks share the
// GPU. LUD launches many differently-sized kernels (several of them too
// small to fill the machine), so spatial sharing plus preemption beats
// the non-preemptive FCFS baseline dramatically on both turnaround time
// (ANTT) and system throughput (STP).
//
// Run with: go run ./examples/multiprogram [benchA] [benchB]
// e.g.:     go run ./examples/multiprogram LUD MUM
package main

import (
	"fmt"
	"log"
	"os"

	"chimera"
)

func main() {
	a, b := "LUD", "MUM"
	if len(os.Args) > 2 {
		a, b = os.Args[1], os.Args[2]
	}

	runner, err := chimera.NewScenarioRunner(
		chimera.Microseconds(20000),
		chimera.Microseconds(30), // the §4.4 constraint: max context-switch time
		1,
	)
	if err != nil {
		log.Fatal(err)
	}

	fcfs, err := runner.RunPair(a, b, nil, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s + %s on a shared GPU (20ms simulated, 30µs constraint):\n\n", a, b)
	fmt.Printf("%-10s  %8s  %8s  %14s  %13s  %9s\n",
		"policy", "ANTT", "STP", "ANTT-improve", "STP-improve", "requests")
	fmt.Printf("%-10s  %8.2f  %8.2f  %14s  %13s  %9d\n",
		"FCFS", fcfs.ANTT, fcfs.STP, "-", "-", fcfs.Requests)

	for _, policy := range chimera.StandardPolicies() {
		res, err := runner.RunPair(a, b, policy, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %8.2f  %8.2f  %13.1fx  %12.1f%%  %9d\n",
			res.Policy, res.ANTT, res.STP,
			fcfs.ANTT/res.ANTT, 100*(res.STP-fcfs.STP)/fcfs.STP, res.Requests)
	}
	fmt.Println("\nANTT = average normalized turnaround time (lower is better; the")
	fmt.Println("improvement column is FCFS/policy). STP = system throughput (max 2.0).")
}
