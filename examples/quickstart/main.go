// Quickstart: drive Chimera's decision core directly, then watch the
// same decisions play out inside the full multitasking simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chimera"
)

func main() {
	// --- Part 1: Algorithm 1 on a hand-built snapshot -----------------
	//
	// One SM of the Table 1 device runs four thread blocks of
	// BlackScholes (strictly idempotent, ~42.6k warp instructions per
	// block) at different progress points. Ask Chimera to free the SM
	// within 15µs.
	cfg := chimera.DefaultConfig()
	spec := chimera.Catalog().MustKernel("BS.0")
	params := spec.Params

	est := chimera.KernelEstimate{
		AvgInstsPerTB:    float64(params.InstsPerTB),
		HasInsts:         true,
		AvgCPI:           params.BaseCPI,
		HasCPI:           true,
		SMIPC:            params.SMIPC(),
		HasIPC:           true,
		SMSwitchCycles:   params.SwitchCycles(cfg),
		TBSwitchCycles:   params.TBSwitchCycles(cfg),
		StrictIdempotent: params.StrictIdempotent,
	}
	sm := chimera.SMSnapshot{SM: 0}
	for i, progress := range []float64{0.05, 0.40, 0.70, 0.97} {
		executed := int64(progress * float64(params.InstsPerTB))
		sm.TBs = append(sm.TBs, chimera.TBSnapshot{
			Index:     i,
			Executed:  executed,
			RunCycles: chimera.Cycles(float64(executed) * params.BaseCPI),
		})
	}

	constraint := float64(chimera.Microseconds(15))
	plan := chimera.PlanSM(sm, est, constraint, chimera.EstimateOptions{Relaxed: true})
	fmt.Println("Per-block decisions for one BS.0 SM under a 15µs constraint:")
	for i, tb := range plan.TBs {
		fmt.Printf("  block %d at %4.0f%% progress -> %-6v (est. overhead %8.0f insts, latency %6.1fµs)\n",
			tb.Index, 100*float64(sm.TBs[i].Executed)/float64(params.InstsPerTB),
			tb.Technique, tb.Cost.OverheadInsts, tb.Cost.LatencyCycles/1400)
	}
	fmt.Printf("  => SM hand-over in %.1fµs, total overhead %.0f warp insts\n\n",
		plan.LatencyCycles/1400, plan.OverheadInsts)

	// --- Part 2: the same policy inside the full simulator ------------
	//
	// BlackScholes shares the GPU with HotSpot under Chimera; HotSpot's
	// arrival forces a preemption of half the machine.
	sim := chimera.NewSimulation(chimera.SimOptions{
		Policy:     chimera.ChimeraPolicy{},
		Constraint: chimera.Microseconds(15),
		Seed:       42,
		WarmStats:  true,
	})
	cat := chimera.Catalog()
	addBenchmark(sim, cat, "BS")
	addBenchmark(sim, cat, "HS")
	sim.Run(chimera.Microseconds(4000))

	fmt.Println("Simulated 4ms of BS + HS under Chimera:")
	fmt.Printf("  BS useful insts: %d\n", sim.ProcessUseful("BS"))
	fmt.Printf("  HS useful insts: %d\n", sim.ProcessUseful("HS"))
	reqs := sim.Requests()
	fmt.Printf("  preemption requests: %d\n", len(reqs))
	for i, r := range reqs {
		if i == 3 {
			fmt.Printf("  ... (%d more)\n", len(reqs)-3)
			break
		}
		mix := r.Mix()
		fmt.Printf("  request @%v: victim=%s SMs=%d latency=%v mix{switch:%d drain:%d flush:%d}\n",
			r.At, r.Victim, r.NumSMs, r.LatencyCycles, mix[chimera.Switch], mix[chimera.Drain], mix[chimera.Flush])
	}
}

func addBenchmark(sim *chimera.Simulation, cat *chimera.WorkloadCatalog, name string) {
	b, err := cat.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	var launches []chimera.LaunchSpec
	for _, l := range b.Launches {
		spec, err := cat.Kernel(l.Label)
		if err != nil {
			log.Fatal(err)
		}
		launches = append(launches, chimera.LaunchSpec{Params: spec.Params, Grid: l.Grid})
	}
	sim.AddProcess(chimera.ProcessSpec{Name: name, Launches: launches, Loop: true})
}
