// Tracing: watch Chimera's decisions happen. A trace recorder and a
// metrics registry are attached to the simulator while a benchmark is
// preempted by the periodic real-time task; the example prints the
// event timeline around the first preemption request, a technique
// summary, and the preemption-latency histograms. With a second
// argument the full event stream is also exported as Chrome
// trace-event JSON, openable in ui.perfetto.dev.
//
// Run with: go run ./examples/tracing [benchmark [trace.json]]
package main

import (
	"fmt"
	"log"
	"os"

	"chimera"
)

func main() {
	bench := "SAD"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	traceFile := ""
	if len(os.Args) > 2 {
		traceFile = os.Args[2]
	}

	// A collector keeps every event (the shape the Perfetto exporter
	// wants); the registry accumulates latency histograms alongside.
	collector := chimera.NewTraceCollector()
	reg := chimera.NewMetricsRegistry()
	sim := chimera.NewSimulation(chimera.SimOptions{
		Policy:     chimera.ChimeraPolicy{},
		Constraint: chimera.Microseconds(15),
		Seed:       7,
		WarmStats:  true,
		Tracer:     collector,
		Metrics:    reg,
	})

	cat := chimera.Catalog()
	b, err := cat.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	var launches []chimera.LaunchSpec
	for _, l := range b.Launches {
		spec := cat.MustKernel(l.Label)
		launches = append(launches, chimera.LaunchSpec{Params: spec.Params, Grid: l.Grid})
	}
	sim.AddProcess(chimera.ProcessSpec{Name: bench, Launches: launches, Loop: true})
	sim.AddPeriodicTask(chimera.PeriodicSpec{
		Period: chimera.Microseconds(1000),
		Exec:   chimera.Microseconds(200),
		SMs:    15,
	})
	sim.Run(chimera.Microseconds(5000))

	events := collector.Events()
	fmt.Printf("Recorded %d events over 5ms of %s under Chimera.\n\n", len(events), bench)

	// Show the timeline around the first preemption request.
	for i, e := range events {
		if e.Kind != chimera.TraceRequest {
			continue
		}
		fmt.Println("Timeline around the first preemption request:")
		lo, hi := i-2, i+18
		if lo < 0 {
			lo = 0
		}
		if hi > len(events) {
			hi = len(events)
		}
		for _, ev := range events[lo:hi] {
			fmt.Println(" ", ev)
		}
		fmt.Println("  ...")
		break
	}

	fmt.Println("\nEvent summary:")
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind.String()]++
	}
	summary := []struct{ kind, label string }{
		{chimera.TraceKernelLaunch.String(), "kernel launches"},
		{chimera.TraceKernelFinish.String(), "kernel completions"},
		{chimera.TraceRequest.String(), "preemption requests"},
		{chimera.TraceFlushTB.String(), "blocks flushed"},
		{chimera.TraceDrainTB.String(), "blocks drained"},
		{chimera.TraceSaveTB.String(), "blocks context-saved"},
		{chimera.TraceSaveDone.String(), "context saves done"},
		{chimera.TraceRestoreTB.String(), "blocks restored"},
		{chimera.TraceHandover.String(), "SM handovers"},
		{chimera.TraceDeadlineMiss.String(), "deadline misses"},
	}
	for _, row := range summary {
		fmt.Printf("  %-22s %d\n", row.label, counts[row.kind])
	}

	fmt.Println("\nMetrics:")
	if err := reg.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := chimera.WritePerfettoTrace(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nWrote %s — open it in ui.perfetto.dev.\n", traceFile)
	}
}
