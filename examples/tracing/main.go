// Tracing: watch Chimera's decisions happen. A trace recorder is
// attached to the simulator while a benchmark is preempted by the
// periodic real-time task; the example prints the event timeline around
// the first preemption request and a technique summary for the run.
//
// Run with: go run ./examples/tracing [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"chimera"
)

func main() {
	bench := "SAD"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	ring := chimera.NewTraceRing(100000)
	sim := chimera.NewSimulation(chimera.SimOptions{
		Policy:     chimera.ChimeraPolicy{},
		Constraint: chimera.Microseconds(15),
		Seed:       7,
		WarmStats:  true,
		Tracer:     ring,
	})

	cat := chimera.Catalog()
	b, err := cat.Benchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	var launches []chimera.LaunchSpec
	for _, l := range b.Launches {
		spec := cat.MustKernel(l.Label)
		launches = append(launches, chimera.LaunchSpec{Params: spec.Params, Grid: l.Grid})
	}
	sim.AddProcess(chimera.ProcessSpec{Name: bench, Launches: launches, Loop: true})
	sim.AddPeriodicTask(chimera.PeriodicSpec{
		Period: chimera.Microseconds(1000),
		Exec:   chimera.Microseconds(200),
		SMs:    15,
	})
	sim.Run(chimera.Microseconds(5000))

	events := ring.Events()
	fmt.Printf("Recorded %d events over 5ms of %s under Chimera.\n\n", len(events), bench)

	// Show the timeline around the first preemption request.
	for i, e := range events {
		if e.Kind != chimera.TraceRequest {
			continue
		}
		fmt.Println("Timeline around the first preemption request:")
		lo, hi := i-2, i+18
		if lo < 0 {
			lo = 0
		}
		if hi > len(events) {
			hi = len(events)
		}
		for _, ev := range events[lo:hi] {
			fmt.Println(" ", ev)
		}
		fmt.Println("  ...")
		break
	}

	fmt.Println("\nEvent summary:")
	counts := ring.Counts()
	summary := []struct {
		kind  chimera.TraceEvent
		label string
	}{
		{chimera.TraceEvent{Kind: chimera.TraceKernelLaunch}, "kernel launches"},
		{chimera.TraceEvent{Kind: chimera.TraceKernelFinish}, "kernel completions"},
		{chimera.TraceEvent{Kind: chimera.TraceRequest}, "preemption requests"},
		{chimera.TraceEvent{Kind: chimera.TraceFlushTB}, "blocks flushed"},
		{chimera.TraceEvent{Kind: chimera.TraceDrainTB}, "blocks drained"},
		{chimera.TraceEvent{Kind: chimera.TraceSaveTB}, "blocks context-saved"},
		{chimera.TraceEvent{Kind: chimera.TraceRestoreTB}, "blocks restored"},
		{chimera.TraceEvent{Kind: chimera.TraceHandover}, "SM handovers"},
		{chimera.TraceEvent{Kind: chimera.TraceDeadlineMiss}, "deadline misses"},
	}
	for _, row := range summary {
		fmt.Printf("  %-22s %d\n", row.label, counts[row.kind.Kind])
	}
}
