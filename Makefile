# Chimera reproduction — build, test and evaluation targets.

GO ?= go

# Pinned staticcheck release (supports the go.mod language version).
# CI installs it; locally `make lint` uses it when present and says so
# when not, since offline containers cannot fetch it.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test short cover bench bench-all benchdiff verify-identical race results quick-results fuzz fuzz-smoke examples vet lint docs-check serve-smoke replay-smoke fleet-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate (see docs/static-analysis.md): go vet, the
# project's own chimeravet suite (determinism, sim-clock, context-flow
# and schema invariants), the negative selftest that proves the fixture
# corpus still fails, and a pinned staticcheck when installed.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/chimeravet ./...
	$(GO) run ./cmd/chimeravet -selftest
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins honnef.co/go/tools@$(STATICCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# Perf baselines (see docs/performance.md): the simulator inner loop
# (ns/sim-cycle), Algorithm 1 selection, the idempotence analysis and
# the spec-addressed job layer in BENCH_core.json; the multitasking
# hot-loop scenario in BENCH_engine.json; the event-queue
# microbenchmarks in BENCH_eventq.json; the chimerad admission-queue
# hot loop in BENCH_sched.json. Regenerates the checked-in
# files so perf PRs have a before/after to diff — `make benchdiff`
# checks a fresh run against them.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkSimulation|BenchmarkSelect|BenchmarkAnalyze|BenchmarkSimjobPool)$$' -benchmem -count=1 . | $(GO) run ./cmd/benchjson -out BENCH_core.json
	$(GO) test -run '^$$' -bench '^BenchmarkEngineHot$$' -benchmem -count=1 . | $(GO) run ./cmd/benchjson -out BENCH_engine.json
	$(GO) test -run '^$$' -bench '^BenchmarkEventQ' -benchmem -count=1 ./internal/eventq/ | $(GO) run ./cmd/benchjson -out BENCH_eventq.json
	$(GO) test -run '^$$' -bench '^BenchmarkFleet' -benchmem -count=1 ./internal/cluster/ | $(GO) run ./cmd/benchjson -out BENCH_cluster.json
	$(GO) test -run '^$$' -bench '^BenchmarkAdmissionQueue$$' -benchmem -count=1 ./internal/sched/ | $(GO) run ./cmd/benchjson -out BENCH_sched.json

# Non-regression gate: rerun the baseline benchmarks into a scratch
# directory and compare against the checked-in BENCH_*.json with
# cmd/benchdiff. The tolerance defaults to 30%; noisy machines can
# widen it via BENCHDIFF_TOL (e.g. BENCHDIFF_TOL=0.75 on shared CI
# runners). After a deliberate perf change, run `make bench` and commit
# the refreshed baselines.
BENCHDIFF_DIR ?= /tmp/chimera-benchdiff
benchdiff:
	mkdir -p $(BENCHDIFF_DIR)
	$(GO) test -run '^$$' -bench '^(BenchmarkSimulation|BenchmarkSelect|BenchmarkAnalyze|BenchmarkSimjobPool)$$' -benchmem -count=1 . | $(GO) run ./cmd/benchjson -out $(BENCHDIFF_DIR)/core.json
	$(GO) test -run '^$$' -bench '^BenchmarkEngineHot$$' -benchmem -count=1 . | $(GO) run ./cmd/benchjson -out $(BENCHDIFF_DIR)/engine.json
	$(GO) test -run '^$$' -bench '^BenchmarkEventQ' -benchmem -count=1 ./internal/eventq/ | $(GO) run ./cmd/benchjson -out $(BENCHDIFF_DIR)/eventq.json
	$(GO) test -run '^$$' -bench '^BenchmarkFleet' -benchmem -count=1 ./internal/cluster/ | $(GO) run ./cmd/benchjson -out $(BENCHDIFF_DIR)/cluster.json
	$(GO) test -run '^$$' -bench '^BenchmarkAdmissionQueue$$' -benchmem -count=1 ./internal/sched/ | $(GO) run ./cmd/benchjson -out $(BENCHDIFF_DIR)/sched.json
	$(GO) run ./cmd/benchdiff \
		BENCH_core.json $(BENCHDIFF_DIR)/core.json \
		BENCH_engine.json $(BENCHDIFF_DIR)/engine.json \
		BENCH_eventq.json $(BENCHDIFF_DIR)/eventq.json \
		BENCH_cluster.json $(BENCHDIFF_DIR)/cluster.json \
		BENCH_sched.json $(BENCHDIFF_DIR)/sched.json

# Metamorphic identity gate: the quick exhibit sweep must be
# bit-reproducible (two runs byte-identical) and must still match the
# checked-in canonical trace — the proof that perf work (pooling,
# batching, queue swaps) changed no observable behavior.
VERIFY_DIR ?= /tmp/chimera-verify
verify-identical:
	mkdir -p $(VERIFY_DIR)/a $(VERIFY_DIR)/b
	$(GO) run ./cmd/chimerasim -quick -trace trace.json all > $(VERIFY_DIR)/a/results.txt 2>&1 && mv trace.json $(VERIFY_DIR)/a/trace.json
	$(GO) run ./cmd/chimerasim -quick -trace trace.json all > $(VERIFY_DIR)/b/results.txt 2>&1 && mv trace.json $(VERIFY_DIR)/b/trace.json
	cmp $(VERIFY_DIR)/a/results.txt $(VERIFY_DIR)/b/results.txt
	cmp $(VERIFY_DIR)/a/trace.json $(VERIFY_DIR)/b/trace.json
	cmp $(VERIFY_DIR)/a/trace.json trace_canonical.json
	@echo "verify-identical: two quick sweeps byte-identical and equal to trace_canonical.json"

# Every benchmark in the repository (slow; exhibits log their tables).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Full test suite under the race detector (the experiment stack fans
# simulation jobs out over a worker pool).
race:
	$(GO) test -race ./...

# Regenerate every paper exhibit at the recorded EXPERIMENTS.md scale.
results:
	$(GO) run ./cmd/chimerasim -v all | tee results_full.txt

# Quick pass over every exhibit, also refreshing the canonical trace
# artifact referenced from EXPERIMENTS.md and docs/observability.md.
quick-results:
	$(GO) run ./cmd/chimerasim -quick -trace trace_canonical.json all

# Documentation gates: every example must build, the observability,
# server and lint packages (whose APIs docs/observability.md,
# docs/server.md and docs/static-analysis.md document) must not export
# undocumented symbols, and the static-analysis page must stay
# cross-linked from README and DESIGN.
docs-check:
	$(GO) build ./examples/...
	$(GO) run ./cmd/doccheck ./internal/trace ./internal/metrics ./internal/server ./internal/server/client ./internal/lint ./internal/faults ./internal/jobspec ./internal/replay ./internal/cluster ./internal/sched ./internal/sched/predict
	@test -f docs/static-analysis.md || { echo "docs/static-analysis.md is missing"; exit 1; }
	@test -f docs/faults.md || { echo "docs/faults.md is missing"; exit 1; }
	@test -f docs/jobs.md || { echo "docs/jobs.md is missing"; exit 1; }
	@test -f docs/performance.md || { echo "docs/performance.md is missing"; exit 1; }
	@grep -q "docs/static-analysis.md" README.md || { echo "README.md does not link docs/static-analysis.md"; exit 1; }
	@grep -q "static-analysis.md" DESIGN.md || { echo "DESIGN.md does not link docs/static-analysis.md"; exit 1; }
	@grep -q "jobs.md" docs/server.md || { echo "docs/server.md does not link docs/jobs.md"; exit 1; }
	@grep -q "jobspec" EXPERIMENTS.md || { echo "EXPERIMENTS.md does not reference the jobspec layer"; exit 1; }
	@grep -q "docs/performance.md" README.md || { echo "README.md does not link docs/performance.md"; exit 1; }
	@grep -q "performance.md" DESIGN.md || { echo "DESIGN.md does not link docs/performance.md"; exit 1; }
	@grep -q "performance.md" docs/observability.md || { echo "docs/observability.md does not link docs/performance.md"; exit 1; }
	@grep -q "static-analysis.md" docs/performance.md || { echo "docs/performance.md does not link docs/static-analysis.md"; exit 1; }
	@grep -q "chimera:hot" docs/static-analysis.md || { echo "docs/static-analysis.md does not document the //chimera:hot contract"; exit 1; }
	@grep -q "hotalloc" DESIGN.md || { echo "DESIGN.md does not describe the hotalloc analyzer"; exit 1; }
	@grep -q "jobspec" DESIGN.md || { echo "DESIGN.md does not reference the jobspec layer"; exit 1; }
	@grep -q "jobspec" docs/paper-map.md || { echo "docs/paper-map.md does not reference the jobspec layer"; exit 1; }
	@grep -q "performance.md" docs/paper-map.md || { echo "docs/paper-map.md does not reference docs/performance.md"; exit 1; }
	@test -f docs/cluster.md || { echo "docs/cluster.md is missing"; exit 1; }
	@grep -q "cluster.md" docs/server.md || { echo "docs/server.md does not link docs/cluster.md"; exit 1; }
	@grep -q "docs/cluster.md" README.md || { echo "README.md does not link docs/cluster.md"; exit 1; }
	@test -f docs/scheduling.md || { echo "docs/scheduling.md is missing"; exit 1; }
	@grep -q "scheduling.md" docs/server.md || { echo "docs/server.md does not link docs/scheduling.md"; exit 1; }
	@grep -q "scheduling.md" docs/jobs.md || { echo "docs/jobs.md does not link docs/scheduling.md"; exit 1; }
	@grep -q "scheduling.md" docs/observability.md || { echo "docs/observability.md does not link docs/scheduling.md"; exit 1; }

# End-to-end service smoke: boot chimerad on a random port, drive the
# full client path (submit, poll, cancel, scrape /metrics), then SIGTERM
# and assert a graceful drain. See docs/server.md.
serve-smoke:
	$(GO) build -o bin/chimerad ./cmd/chimerad
	$(GO) run ./cmd/servesmoke -bin bin/chimerad

# End-to-end record → replay → diff smoke: boot chimerad with -record,
# drive a mixed campaign, drain, then replay the trace three times (once
# with timing faults armed) and require byte-identical reports. See
# docs/jobs.md.
replay-smoke:
	$(GO) build -o bin/chimerad ./cmd/chimerad
	$(GO) build -o bin/chimerareplay ./cmd/chimerareplay
	$(GO) run ./cmd/replaysmoke -daemon bin/chimerad -replay bin/chimerareplay

# End-to-end fleet smoke: boot two chimerad replicas (peer cache armed)
# plus a chimerafront on random ports, drive a duplicate-heavy workload
# through the front and check the fleet-as-one-cache arithmetic, then a
# chaos leg that arms one replica's HTTP fault plane and SIGTERMs it
# mid-run — the front must fail its ring range over with zero failed
# jobs. See docs/cluster.md.
fleet-smoke:
	$(GO) build -o bin/chimerad ./cmd/chimerad
	$(GO) build -o bin/chimerafront ./cmd/chimerafront
	$(GO) run ./cmd/fleetsmoke -chimerad bin/chimerad -front bin/chimerafront

# Fuzz the kernel-IR parser for 30 seconds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/kernelir/

# CI fuzz gate: every fuzz target for 20 seconds each. Checked-in seed
# corpora live under each package's testdata/fuzz/; anything the fuzzer
# newly discovers in these short runs stays in the local build cache.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/kernelir/
	$(GO) test -run '^$$' -fuzz FuzzFlushSoundness -fuzztime $(FUZZTIME) ./internal/funcsim/
	$(GO) test -run '^$$' -fuzz FuzzEventQ -fuzztime $(FUZZTIME) ./internal/eventq/
	$(GO) test -run '^$$' -fuzz FuzzPlanIO -fuzztime $(FUZZTIME) ./internal/planio/
	$(GO) test -run '^$$' -fuzz FuzzAdmissionOrder -fuzztime $(FUZZTIME) ./internal/sched/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/idempotence
	$(GO) run ./examples/realtime FWT 10000
	$(GO) run ./examples/multiprogram LUD MUM
	$(GO) run ./examples/tracing SAD

clean:
	$(GO) clean ./...
