# Chimera reproduction — build, test and evaluation targets.

GO ?= go

.PHONY: all build test short cover bench race results quick-results fuzz examples vet docs-check serve-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full test suite under the race detector (the experiment stack fans
# simulation jobs out over a worker pool).
race:
	$(GO) test -race ./...

# Regenerate every paper exhibit at the recorded EXPERIMENTS.md scale.
results:
	$(GO) run ./cmd/chimerasim -v all | tee results_full.txt

# Quick pass over every exhibit, also refreshing the canonical trace
# artifact referenced from EXPERIMENTS.md and docs/observability.md.
quick-results:
	$(GO) run ./cmd/chimerasim -quick -trace trace_canonical.json all

# Documentation gates: every example must build, and the observability
# and server packages (whose APIs docs/observability.md and
# docs/server.md document) must not export undocumented symbols.
docs-check:
	$(GO) build ./examples/...
	$(GO) run ./cmd/doccheck ./internal/trace ./internal/metrics ./internal/server ./internal/server/client

# End-to-end service smoke: boot chimerad on a random port, drive the
# full client path (submit, poll, cancel, scrape /metrics), then SIGTERM
# and assert a graceful drain. See docs/server.md.
serve-smoke:
	$(GO) build -o bin/chimerad ./cmd/chimerad
	$(GO) run ./cmd/servesmoke -bin bin/chimerad

# Fuzz the kernel-IR parser for 30 seconds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/kernelir/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/idempotence
	$(GO) run ./examples/realtime FWT 10000
	$(GO) run ./examples/multiprogram LUD MUM
	$(GO) run ./examples/tracing SAD

clean:
	$(GO) clean ./...
