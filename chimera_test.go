package chimera_test

import (
	"strings"
	"testing"

	"chimera"
)

func TestDefaultConfig(t *testing.T) {
	cfg := chimera.DefaultConfig()
	if cfg.NumSMs != 30 {
		t.Errorf("NumSMs = %d", cfg.NumSMs)
	}
	if cfg.Bandwidth != 177.4 {
		t.Errorf("Bandwidth = %v", cfg.Bandwidth)
	}
}

func TestMicroseconds(t *testing.T) {
	if chimera.Microseconds(15) != 21000 {
		t.Errorf("Microseconds(15) = %d", chimera.Microseconds(15))
	}
}

func TestCatalogAccess(t *testing.T) {
	cat := chimera.Catalog()
	if len(cat.Kernels()) != 27 || len(cat.Benchmarks()) != 14 {
		t.Fatalf("catalog %d kernels / %d benchmarks", len(cat.Kernels()), len(cat.Benchmarks()))
	}
	if cat.IdempotentCount() != 12 {
		t.Errorf("idempotent = %d", cat.IdempotentCount())
	}
}

// TestPublicDecisionFlow exercises the headline API end to end: build a
// snapshot, estimate costs, select with Algorithm 1.
func TestPublicDecisionFlow(t *testing.T) {
	cfg := chimera.DefaultConfig()
	params := chimera.Catalog().MustKernel("BS.0").Params
	est := chimera.KernelEstimate{
		AvgInstsPerTB:    float64(params.InstsPerTB),
		HasInsts:         true,
		AvgCPI:           params.BaseCPI,
		HasCPI:           true,
		SMIPC:            params.SMIPC(),
		HasIPC:           true,
		SMSwitchCycles:   params.SwitchCycles(cfg),
		TBSwitchCycles:   params.TBSwitchCycles(cfg),
		StrictIdempotent: params.StrictIdempotent,
	}
	in := chimera.Input{Est: est}
	for s := 0; s < 4; s++ {
		sm := chimera.SMSnapshot{SM: chimera.SMID(s)}
		for b := 0; b < 4; b++ {
			executed := int64(b) * params.InstsPerTB / 5
			sm.TBs = append(sm.TBs, chimera.TBSnapshot{
				Index:     s*4 + b,
				Executed:  executed,
				RunCycles: chimera.Cycles(float64(executed) * params.BaseCPI),
			})
		}
		in.SMs = append(in.SMs, sm)
	}
	req := chimera.Request{
		ConstraintCycles: float64(chimera.Microseconds(15)),
		NumPreempts:      2,
		Opts:             chimera.EstimateOptions{Relaxed: true},
	}
	sel := chimera.Select(req, in)
	if len(sel.Plans) != 2 {
		t.Fatalf("selected %d SMs", len(sel.Plans))
	}
	for _, p := range sel.Plans {
		if !p.MeetsLatency(req.ConstraintCycles) {
			t.Errorf("plan %v misses the constraint (%.0f cycles)", p.String(), p.LatencyCycles)
		}
	}

	// Per-block cost API agrees with the plan's choices being feasible.
	costs := chimera.EstimateCosts(in.SMs[0].TBs[0], est, 4, 0, chimera.EstimateOptions{Relaxed: true})
	if costs[chimera.Flush].LatencyCycles != 0 {
		t.Error("flush latency should be zero")
	}
}

func TestPublicKernelIR(t *testing.T) {
	prog := chimera.NewKernelBuilder("inc").
		LoadG("x", "t").ALU(1).StoreG("x", "t").Build()
	res, err := chimera.AnalyzeKernel(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.StrictIdempotent {
		t.Error("x[i]++ must not be idempotent")
	}
	inst := chimera.InstrumentKernel(prog)
	if inst.NotifyCount != 1 {
		t.Errorf("NotifyCount = %d", inst.NotifyCount)
	}
}

func TestPublicSimulation(t *testing.T) {
	sim := chimera.NewSimulation(chimera.SimOptions{
		Policy:     chimera.ChimeraPolicy{},
		Constraint: chimera.Microseconds(15),
		Seed:       1,
		WarmStats:  true,
	})
	spec := chimera.Catalog().MustKernel("HS.0")
	sim.AddProcess(chimera.ProcessSpec{
		Name:     "hs",
		Launches: []chimera.LaunchSpec{{Params: spec.Params, Grid: 450}},
		Loop:     true,
	})
	sim.AddPeriodicTask(chimera.PeriodicSpec{
		Period: chimera.Microseconds(1000),
		Exec:   chimera.Microseconds(200),
		SMs:    15,
	})
	sim.Run(chimera.Microseconds(5000))
	if sim.ProcessUseful("hs") <= 0 {
		t.Error("no progress")
	}
	if len(sim.PeriodRecords()) == 0 {
		t.Error("no period records")
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := chimera.ExperimentNames()
	if len(names) != 20 {
		t.Fatalf("names = %v", names)
	}
	tables, err := chimera.RunExperiment("table1", chimera.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := chimera.RenderTables(&sb, tables); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("table 1 missing from output")
	}
	if _, err := chimera.RunExperiment("nope", chimera.QuickScale()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestStandardPoliciesPublic(t *testing.T) {
	if got := len(chimera.StandardPolicies()); got != 4 {
		t.Errorf("%d standard policies", got)
	}
}

func TestPublicWarpLevelAndFunctional(t *testing.T) {
	prog, err := chimera.ParseKernelString(".kernel k\nld global:x[t]\nalu x3\nst global:y[t]\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := chimera.RunWarpLevel(prog, chimera.DefaultSMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 || res.CPI() <= 0 {
		t.Errorf("warp-level result: %+v", res)
	}
	clean, err := chimera.ExecuteKernel(prog, -1)
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := chimera.ExecuteKernel(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !flushed.Equal(clean) {
		t.Error("flush inside the idempotent window diverged")
	}
	if got := chimera.DisassembleKernel(prog); !strings.Contains(got, ".kernel k") {
		t.Errorf("disassembly = %q", got)
	}
}

func TestPublicTracing(t *testing.T) {
	ring := chimera.NewTraceRing(64)
	ring.Record(chimera.TraceEvent{Kind: chimera.TraceRequest, SM: -1, TB: -1})
	if ring.Counts()[chimera.TraceRequest] != 1 {
		t.Error("trace ring lost an event")
	}
}
